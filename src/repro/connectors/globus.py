"""Connector moving objects between sites as files via (simulated) Globus transfer.

Mirrors Section 4.2.1 of the paper: the connector is initialized with a
mapping of *hostname patterns* to ``(endpoint UUID, endpoint path)`` pairs.
``put`` writes the object into the local endpoint's directory and submits one
transfer task per remote endpoint; the key is ``(object_id, task_id)``.  A
consumer resolves the object by matching its own hostname against the
patterns to find its local endpoint directory, waiting for the transfer task
to succeed, and reading the file — raising an error if the transfer failed.

Because every process in this reproduction runs on one machine, the "current
hostname" can be overridden per thread with :func:`set_current_hostname`,
which the benchmarks use to act out the producer and consumer sites.
"""
from __future__ import annotations

import contextvars
import os
import re
import socket
from typing import Any
from typing import NamedTuple
from typing import Sequence

from repro.connectors.protocol import Connector
from repro.connectors.protocol import ConnectorCapabilities
from repro.connectors.protocol import PutData
from repro.connectors.protocol import new_object_id
from repro.connectors.registry import StoreURL
from repro.serialize.buffers import write_payload_to_path
from repro.exceptions import ConnectorError
from repro.exceptions import TransferError
from repro.globus_sim.service import GlobusTransferService
from repro.globus_sim.service import get_transfer_service

__all__ = [
    'GlobusConnector',
    'GlobusEndpointMapping',
    'GlobusKey',
    'current_hostname',
    'set_current_hostname',
]

_HOSTNAME: contextvars.ContextVar[str | None] = contextvars.ContextVar(
    'repro_globus_hostname', default=None,
)


def current_hostname() -> str:
    """Return the hostname used for endpoint matching (override-aware)."""
    override = _HOSTNAME.get()
    return override if override is not None else socket.gethostname()


def set_current_hostname(hostname: str | None) -> contextvars.Token:
    """Override the hostname used for endpoint matching in this context.

    Pass ``None`` to fall back to the real hostname.  Returns the token so
    callers can restore the previous value with ``_HOSTNAME.reset(token)``.
    """
    return _HOSTNAME.set(hostname)


class GlobusKey(NamedTuple):
    """Key of a Globus-transferred object: the file name and the transfer task ids."""

    object_id: str
    task_ids: tuple[str, ...]


class GlobusEndpointMapping(NamedTuple):
    """One entry of the hostname-pattern to endpoint mapping."""

    hostname_pattern: str
    endpoint_uuid: str
    endpoint_path: str


class GlobusConnector(Connector):
    """Connector performing inter-site object movement as Globus file transfers.

    Args:
        endpoints: mapping of hostname regular expression to
            ``(endpoint_uuid, endpoint_path)``.  All endpoints must already be
            registered with the transfer service.
        service: transfer service instance; defaults to the process-global
            simulated service.
        transfer_timeout: seconds to wait for a transfer task when resolving.
    """

    connector_name = 'globus'
    scheme = 'globus'
    supports_buffers = True
    capabilities = ConnectorCapabilities(
        storage='disk',
        intra_site=True,
        inter_site=True,
        persistence=True,
        tags=('disk', 'bulk-transfer', 'globus'),
    )

    def __init__(
        self,
        endpoints: dict[str, tuple[str, str]],
        *,
        service: GlobusTransferService | None = None,
        transfer_timeout: float = 30.0,
    ) -> None:
        if not endpoints:
            raise ValueError('GlobusConnector requires at least one endpoint mapping')
        self.endpoints = {
            pattern: (uuid, os.path.abspath(path))
            for pattern, (uuid, path) in endpoints.items()
        }
        self.transfer_timeout = transfer_timeout
        self._service = service if service is not None else get_transfer_service()
        for _pattern, (uuid, path) in self.endpoints.items():
            os.makedirs(path, exist_ok=True)

    def __repr__(self) -> str:
        return f'GlobusConnector(endpoints={sorted(self.endpoints)!r})'

    # -- endpoint resolution ----------------------------------------------- #
    def _local_endpoint(self) -> tuple[str, str]:
        """Return ``(uuid, path)`` of the endpoint matching the current hostname."""
        hostname = current_hostname()
        for pattern, entry in self.endpoints.items():
            if re.search(pattern, hostname):
                return entry
        raise ConnectorError(
            f'no Globus endpoint pattern matches hostname {hostname!r} '
            f'(patterns: {sorted(self.endpoints)})',
        )

    def _remote_endpoints(self, local_uuid: str) -> list[tuple[str, str]]:
        seen: set[str] = set()
        remotes: list[tuple[str, str]] = []
        for _pattern, (uuid, path) in self.endpoints.items():
            if uuid != local_uuid and uuid not in seen:
                seen.add(uuid)
                remotes.append((uuid, path))
        return remotes

    # -- primary operations --------------------------------------------- #
    def put(self, data: PutData) -> GlobusKey:
        keys = self.put_batch([data])
        return keys[0]

    def put_batch(self, datas: Sequence[PutData]) -> list[GlobusKey]:
        """Write the objects locally and submit a single transfer per remote endpoint."""
        local_uuid, local_path = self._local_endpoint()
        object_ids = []
        for data in datas:
            object_id = new_object_id()
            # Scatter/gather straight from the payload's segments.
            write_payload_to_path(os.path.join(local_path, object_id), data)
            object_ids.append(object_id)
        task_ids: list[str] = []
        items = [(object_id, object_id) for object_id in object_ids]
        for remote_uuid, _remote_path in self._remote_endpoints(local_uuid):
            task_ids.append(
                self._service.submit_transfer(local_uuid, remote_uuid, items),
            )
        return [
            GlobusKey(object_id=object_id, task_ids=tuple(task_ids))
            for object_id in object_ids
        ]

    def _wait_for_tasks(self, key: GlobusKey) -> None:
        for task_id in key.task_ids:
            self._service.wait(task_id, timeout=self.transfer_timeout)

    def get(self, key: GlobusKey) -> bytes | None:
        _uuid, local_path = self._local_endpoint()
        try:
            self._wait_for_tasks(key)
        except TransferError:
            raise
        path = os.path.join(local_path, key.object_id)
        try:
            with open(path, 'rb') as f:
                return f.read()
        except FileNotFoundError:
            return None

    def exists(self, key: GlobusKey) -> bool:
        _uuid, local_path = self._local_endpoint()
        for task_id in key.task_ids:
            task = self._service.get_task(task_id)
            if not task.done:
                return False
        return os.path.isfile(os.path.join(local_path, key.object_id))

    def evict(self, key: GlobusKey) -> None:
        # Remove the file from every endpoint directory this connector knows of.
        for _pattern, (_uuid, path) in self.endpoints.items():
            try:
                os.unlink(os.path.join(path, key.object_id))
            except FileNotFoundError:
                pass

    # -- configuration / lifecycle --------------------------------------- #
    def config(self) -> dict[str, Any]:
        return {
            'endpoints': dict(self.endpoints),
            'transfer_timeout': self.transfer_timeout,
        }

    @classmethod
    def from_url(cls, url: StoreURL | str) -> 'GlobusConnector':
        """Build from ``globus://?endpoint=<pattern>|<uuid>|<path>&...``.

        One repeated ``endpoint`` parameter per site maps a hostname pattern
        to its transfer endpoint; ``transfer_timeout`` tunes resolution waits.
        """
        url = StoreURL.parse(url)
        endpoints: dict[str, tuple[str, str]] = {}
        for entry in url.pop_multi('endpoint'):
            parts = entry.split('|')
            if len(parts) != 3:
                raise ValueError(
                    f'globus endpoint entry {entry!r} is not of the form '
                    '<hostname-pattern>|<endpoint-uuid>|<endpoint-path>',
                )
            pattern, endpoint_uuid, endpoint_path = parts
            endpoints[pattern] = (endpoint_uuid, endpoint_path)
        timeout = url.pop_float('transfer_timeout', 30.0)
        assert timeout is not None
        return cls(endpoints, transfer_timeout=timeout)

    def close(self, clear: bool = False) -> None:
        if clear:
            for _pattern, (_uuid, path) in self.endpoints.items():
                if os.path.isdir(path):
                    for name in os.listdir(path):
                        try:
                            os.unlink(os.path.join(path, name))
                        except OSError:  # pragma: no cover
                            pass
