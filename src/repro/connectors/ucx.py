"""UCX-flavoured distributed in-memory connector.

The real connector uses UCX-Py for RDMA communication.  Like the Margo
flavour it maps onto the DIM substrate's ``'memory'`` transport; the
benchmark cost models give it slightly lower effective bandwidth than Margo
on commodity (Chameleon-like) networks, reproducing the gap the paper
observed between UCXStore and MargoStore on the Mellanox 40 GbE system.
"""
from __future__ import annotations

from repro.connectors.dim_base import DIMConnectorBase
from repro.connectors.protocol import ConnectorCapabilities

__all__ = ['UCXConnector']


class UCXConnector(DIMConnectorBase):
    """Distributed in-memory connector using the RDMA-like memory transport."""

    connector_name = 'ucx'
    scheme = 'ucx'
    transport = 'memory'
    capabilities = ConnectorCapabilities(
        storage='memory',
        intra_site=True,
        inter_site=False,
        persistence=False,
        tags=('distributed-memory', 'rdma', 'ucx'),
    )
