"""Connector backed by a (shared) file system directory.

The paper's ``FileConnector`` targets large objects and data that must be
persisted: proxied objects are written as files in a data directory that all
producing and consuming processes can see (e.g. a parallel file system on an
HPC cluster).  Our implementation is identical in behaviour and is fully
functional on a local directory.

Writes are performed atomically (write to a temporary file, then rename) so
that concurrent readers never observe partially written objects.
"""
from __future__ import annotations

import os
import shutil
import tempfile
import threading
from typing import Any

from repro.connectors.protocol import Connector
from repro.connectors.protocol import ConnectorCapabilities
from repro.connectors.protocol import ConnectorKey
from repro.connectors.protocol import new_object_id
from repro.connectors.registry import StoreURL

__all__ = ['FileConnector']


class FileConnector(Connector):
    """Connector serializing objects to files in ``store_dir``.

    Args:
        store_dir: directory in which object files are written.  Created if
            it does not exist.
        clear_on_close: remove the directory when :meth:`close` is called
            with ``clear=True`` (default behaviour matches ProxyStore: close
            leaves data unless ``clear`` is requested).
    """

    connector_name = 'file'
    scheme = 'file'
    capabilities = ConnectorCapabilities(
        storage='disk',
        intra_site=True,
        inter_site=False,
        persistence=True,
        tags=('disk', 'shared-fs'),
    )

    def __init__(self, store_dir: str) -> None:
        self.store_dir = os.path.abspath(store_dir)
        os.makedirs(self.store_dir, exist_ok=True)
        self._lock = threading.Lock()
        self._closed = False

    def __repr__(self) -> str:
        return f'FileConnector(store_dir={self.store_dir!r})'

    def _path(self, key: ConnectorKey) -> str:
        return os.path.join(self.store_dir, key.object_id)

    def _write_atomic(self, key: ConnectorKey, data: bytes) -> None:
        path = self._path(key)
        fd, tmp_path = tempfile.mkstemp(dir=self.store_dir, prefix='.tmp-')
        try:
            with os.fdopen(fd, 'wb') as f:
                f.write(data)
            os.replace(tmp_path, path)
        except BaseException:
            if os.path.exists(tmp_path):  # pragma: no cover - cleanup path
                os.unlink(tmp_path)
            raise

    # -- primary operations --------------------------------------------- #
    def put(self, data: bytes) -> ConnectorKey:
        key = ConnectorKey(object_id=new_object_id(), connector=self.connector_name)
        self._write_atomic(key, data)
        return key

    def get(self, key: ConnectorKey) -> bytes | None:
        path = self._path(key)
        try:
            with open(path, 'rb') as f:
                return f.read()
        except FileNotFoundError:
            return None

    def exists(self, key: ConnectorKey) -> bool:
        return os.path.isfile(self._path(key))

    def evict(self, key: ConnectorKey) -> None:
        try:
            os.unlink(self._path(key))
        except FileNotFoundError:
            pass

    # -- deferred writes -------------------------------------------------- #
    def new_key(self) -> ConnectorKey:
        return ConnectorKey(object_id=new_object_id(), connector=self.connector_name)

    def set(self, key: ConnectorKey, data: bytes) -> None:
        self._write_atomic(key, data)

    # -- configuration / lifecycle --------------------------------------- #
    def config(self) -> dict[str, Any]:
        return {'store_dir': self.store_dir}

    @classmethod
    def from_url(cls, url: StoreURL | str) -> 'FileConnector':
        """Build from ``file:///abs/dir`` (or ``file://rel/dir`` for relative)."""
        url = StoreURL.parse(url)
        store_dir = url.netloc + url.claim_path()
        if not store_dir:
            raise ValueError(f'file URL {url.raw!r} is missing a directory path')
        return cls(store_dir=store_dir)

    def close(self, clear: bool = False) -> None:
        with self._lock:
            if clear and os.path.isdir(self.store_dir):
                shutil.rmtree(self.store_dir, ignore_errors=True)
            self._closed = True

    def __len__(self) -> int:
        try:
            return sum(
                1
                for name in os.listdir(self.store_dir)
                if not name.startswith('.tmp-')
            )
        except FileNotFoundError:
            return 0
