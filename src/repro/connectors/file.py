"""Connector backed by a (shared) file system directory.

The paper's ``FileConnector`` targets large objects and data that must be
persisted: proxied objects are written as files in a data directory that all
producing and consuming processes can see (e.g. a parallel file system on an
HPC cluster).  Our implementation is identical in behaviour and is fully
functional on a local directory.

Writes are performed atomically (write to a temporary file, then rename) so
that concurrent readers never observe partially written objects.  The write
path is zero-copy: a multi-segment :class:`~repro.serialize.SerializedObject`
is written with ``writev``-style scatter/gather directly from the producer's
buffers, and reads return a ``memoryview`` over an ``mmap`` of the object
file so deserialization slices the page cache instead of a heap copy.
"""
from __future__ import annotations

import mmap
import os
import shutil
import tempfile
import threading
from typing import Any

from repro.connectors.protocol import Connector
from repro.connectors.protocol import ConnectorCapabilities
from repro.connectors.protocol import ConnectorKey
from repro.connectors.protocol import PutData
from repro.connectors.protocol import new_object_id
from repro.connectors.registry import StoreURL
from repro.serialize.buffers import segments_of
from repro.serialize.buffers import write_segments

__all__ = ['FileConnector']

#: Objects smaller than this are read with a plain ``read()`` even when
#: ``mmap_read`` is enabled: each live mapping pins a (dup'ed) file
#: descriptor until the deserialized object is garbage collected, so
#: mapping only large objects keeps many-small-object workloads far away
#: from the fd limit while the bandwidth-bound transfers stay zero-copy.
MMAP_MIN_BYTES = 256 * 1024


class FileConnector(Connector):
    """Connector serializing objects to files in ``store_dir``.

    Args:
        store_dir: directory in which object files are written.  Created if
            it does not exist.
        mmap_read: return ``get`` results as memory-mapped views instead of
            reading the file into a fresh byte string (default on; disable
            for file systems without reliable ``mmap`` support).
    """

    connector_name = 'file'
    scheme = 'file'
    supports_buffers = True
    capabilities = ConnectorCapabilities(
        storage='disk',
        intra_site=True,
        inter_site=False,
        persistence=True,
        tags=('disk', 'shared-fs'),
    )

    def __init__(self, store_dir: str, *, mmap_read: bool = True) -> None:
        self.store_dir = os.path.abspath(store_dir)
        self.mmap_read = mmap_read
        os.makedirs(self.store_dir, exist_ok=True)
        self._lock = threading.Lock()
        self._closed = False

    def __repr__(self) -> str:
        return f'FileConnector(store_dir={self.store_dir!r})'

    def _path(self, key: ConnectorKey) -> str:
        return os.path.join(self.store_dir, key.object_id)

    def _write_atomic(self, key: ConnectorKey, data: PutData) -> None:
        path = self._path(key)
        fd, tmp_path = tempfile.mkstemp(dir=self.store_dir, prefix='.tmp-')
        try:
            try:
                write_segments(fd, segments_of(data))
            finally:
                os.close(fd)
            os.replace(tmp_path, path)
        except BaseException:
            if os.path.exists(tmp_path):  # pragma: no cover - cleanup path
                os.unlink(tmp_path)
            raise

    # -- primary operations --------------------------------------------- #
    def put(self, data: PutData) -> ConnectorKey:
        key = ConnectorKey(object_id=new_object_id(), connector=self.connector_name)
        self._write_atomic(key, data)
        return key

    def get(self, key: ConnectorKey) -> 'bytes | memoryview | None':
        path = self._path(key)
        try:
            with open(path, 'rb') as f:
                if not self.mmap_read:
                    return f.read()
                size = os.fstat(f.fileno()).st_size
                if size < MMAP_MIN_BYTES:
                    return f.read()
                # The memoryview keeps the mmap alive; on POSIX the mapping
                # stays valid even if the file is later evicted (unlinked).
                mapped = mmap.mmap(f.fileno(), 0, access=mmap.ACCESS_READ)
                return memoryview(mapped)
        except FileNotFoundError:
            return None

    def exists(self, key: ConnectorKey) -> bool:
        return os.path.isfile(self._path(key))

    def evict(self, key: ConnectorKey) -> None:
        try:
            os.unlink(self._path(key))
        except FileNotFoundError:
            pass

    # -- deferred writes -------------------------------------------------- #
    def new_key(self) -> ConnectorKey:
        return ConnectorKey(object_id=new_object_id(), connector=self.connector_name)

    def set(self, key: ConnectorKey, data: PutData) -> None:
        self._write_atomic(key, data)

    # -- configuration / lifecycle --------------------------------------- #
    def config(self) -> dict[str, Any]:
        return {'store_dir': self.store_dir, 'mmap_read': self.mmap_read}

    @classmethod
    def from_url(cls, url: StoreURL | str) -> 'FileConnector':
        """Build from ``file:///abs/dir[?mmap=0]`` (or ``file://rel/dir``)."""
        url = StoreURL.parse(url)
        store_dir = url.netloc + url.claim_path()
        if not store_dir:
            raise ValueError(f'file URL {url.raw!r} is missing a directory path')
        return cls(store_dir=store_dir, mmap_read=url.pop_bool('mmap', True))

    def close(self, clear: bool = False) -> None:
        with self._lock:
            if clear and os.path.isdir(self.store_dir):
                shutil.rmtree(self.store_dir, ignore_errors=True)
            self._closed = True

    def __len__(self) -> int:
        try:
            return sum(
                1
                for name in os.listdir(self.store_dir)
                if not name.startswith('.tmp-')
            )
        except FileNotFoundError:
            return 0
