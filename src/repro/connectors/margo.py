"""Margo-flavoured distributed in-memory connector.

The real connector uses Py-Mochi-Margo RPCs over RDMA-capable fabrics.  This
reproduction uses the DIM substrate's ``'memory'`` transport, standing in for
RDMA's direct access to a remote node's memory (no per-byte socket cost in
software).  The benchmark cost models give this connector the highest
intra-site bandwidth, matching the paper's observation that MargoStore is the
fastest option on Polaris's Slingshot network.
"""
from __future__ import annotations

from repro.connectors.dim_base import DIMConnectorBase
from repro.connectors.protocol import ConnectorCapabilities

__all__ = ['MargoConnector']


class MargoConnector(DIMConnectorBase):
    """Distributed in-memory connector using the RDMA-like memory transport."""

    connector_name = 'margo'
    scheme = 'margo'
    transport = 'memory'
    capabilities = ConnectorCapabilities(
        storage='memory',
        intra_site=True,
        inter_site=False,
        persistence=False,
        tags=('distributed-memory', 'rdma', 'margo'),
    )
