"""Connector backed by PS-endpoints (Section 4.2.2 of the paper).

Clients interact only with their *local* endpoint; if an operation targets a
key whose ``endpoint_id`` belongs to a different endpoint, the local endpoint
establishes a peer connection and forwards the request (Figure 3).  Keys are
``(object_id, endpoint_id)`` tuples.

The connector is configured with the list of endpoint UUIDs participating in
the application.  Which of them is "local" is decided by, in order: an
explicit ``local_uuid`` argument, the per-context override installed with
:func:`set_local_endpoint` (used by tests and benchmarks to act out different
sites within one process), or the first UUID of the list that corresponds to
a running endpoint in this process.
"""
from __future__ import annotations

import contextvars
from typing import Any
from typing import Sequence

from repro.connectors.protocol import Connector
from repro.connectors.protocol import ConnectorCapabilities
from repro.connectors.protocol import PutData
from repro.connectors.protocol import new_object_id
from repro.connectors.registry import StoreURL
from repro.endpoint.endpoint import Endpoint
from repro.endpoint.endpoint import EndpointKey
from repro.endpoint.endpoint import get_registered_endpoint
from repro.exceptions import EndpointError

__all__ = ['EndpointConnector', 'set_local_endpoint', 'current_local_endpoint']

_LOCAL_ENDPOINT: contextvars.ContextVar[str | None] = contextvars.ContextVar(
    'repro_local_endpoint_uuid', default=None,
)


def set_local_endpoint(endpoint_uuid: str | None) -> contextvars.Token:
    """Override which endpoint UUID is considered local in this context."""
    return _LOCAL_ENDPOINT.set(endpoint_uuid)


def current_local_endpoint() -> str | None:
    """Return the current local-endpoint override (or ``None``)."""
    return _LOCAL_ENDPOINT.get()


class EndpointConnector(Connector):
    """Connector storing objects on the local PS-endpoint.

    Args:
        endpoints: UUIDs of all endpoints participating in the application.
        local_uuid: explicitly pin the local endpoint (optional).
    """

    connector_name = 'endpoint'
    scheme = 'endpoint'
    supports_buffers = True
    capabilities = ConnectorCapabilities(
        storage='hybrid',
        intra_site=True,
        inter_site=True,
        persistence=True,
        tags=('endpoint', 'peer-to-peer'),
    )

    def __init__(self, endpoints: Sequence[str], *, local_uuid: str | None = None) -> None:
        if not endpoints:
            raise ValueError('EndpointConnector requires at least one endpoint UUID')
        self.endpoints = list(endpoints)
        self._pinned_local = local_uuid

    def __repr__(self) -> str:
        return f'EndpointConnector(endpoints={[u[:8] for u in self.endpoints]!r})'

    # -- local endpoint discovery ------------------------------------------ #
    def _local_endpoint(self) -> Endpoint:
        candidates: list[str] = []
        if self._pinned_local is not None:
            candidates.append(self._pinned_local)
        override = _LOCAL_ENDPOINT.get()
        if override is not None:
            candidates.append(override)
        candidates.extend(self.endpoints)
        for uuid in candidates:
            endpoint = get_registered_endpoint(uuid)
            if endpoint is not None and endpoint.running:
                return endpoint
        raise EndpointError(
            'no running endpoint found for this connector (checked '
            f'{[u[:8] for u in candidates]})',
        )

    # -- primary operations --------------------------------------------- #
    def put(self, data: PutData) -> EndpointKey:
        endpoint = self._local_endpoint()
        object_id = new_object_id()
        endpoint.set(object_id, data)
        assert endpoint.uuid is not None
        return EndpointKey(object_id=object_id, endpoint_id=endpoint.uuid)

    def get(self, key: EndpointKey) -> bytes | None:
        endpoint = self._local_endpoint()
        return endpoint.get(key.object_id, endpoint_id=key.endpoint_id)

    def exists(self, key: EndpointKey) -> bool:
        endpoint = self._local_endpoint()
        return endpoint.exists(key.object_id, endpoint_id=key.endpoint_id)

    def evict(self, key: EndpointKey) -> None:
        endpoint = self._local_endpoint()
        endpoint.evict(key.object_id, endpoint_id=key.endpoint_id)

    # -- deferred writes -------------------------------------------------- #
    def new_key(self) -> EndpointKey:
        endpoint = self._local_endpoint()
        assert endpoint.uuid is not None
        return EndpointKey(object_id=new_object_id(), endpoint_id=endpoint.uuid)

    def set(self, key: EndpointKey, data: PutData) -> None:
        # The producer may by now be "running" on a different endpoint than
        # the one the key was allocated on; route the write to the key's
        # endpoint through the peer machinery.
        endpoint = self._local_endpoint()
        endpoint.set(key.object_id, data, endpoint_id=key.endpoint_id)

    # -- configuration / lifecycle --------------------------------------- #
    def config(self) -> dict[str, Any]:
        return {'endpoints': list(self.endpoints)}

    @classmethod
    def from_url(cls, url: StoreURL | str) -> 'EndpointConnector':
        """Build from ``endpoint://uuid1,uuid2[/name][?local=uuid]``.

        Participating endpoint UUIDs are listed comma-separated in the
        netloc (repeated ``uuid=`` query parameters also work); ``local``
        pins the local endpoint.
        """
        url = StoreURL.parse(url)
        uuids = [u for u in url.netloc.split(',') if u]
        uuids.extend(url.pop_multi('uuid'))
        return cls(uuids, local_uuid=url.pop('local'))

    def close(self, clear: bool = False) -> None:
        if clear:
            endpoint = None
            try:
                endpoint = self._local_endpoint()
            except EndpointError:
                return
            endpoint.storage.clear()
