"""Redis-style connector backed by the SimKV server.

The paper's ``RedisConnector`` is a ~30 line interface to an existing Redis
or KeyDB server, giving hybrid in-memory/on-disk storage with low latency and
easy configuration.  Real Redis is unavailable offline, so this connector
talks to the SimKV TCP key-value server (:mod:`repro.kvserver`) instead —
same architecture (central server, one socket round-trip per operation),
different wire protocol.

A connector can either attach to an already running server (``host``/``port``)
or start an in-process server on demand (``launch=True``), which is the
convenient mode for tests and examples.

With ``nodes=['h1:p1', 'h2:p2', ...]`` (URL:
``redis://?nodes=h1:p1,h2:p2&replicas=2``) the connector becomes a
*clustered* client over several SimKV servers: keys are placed by the same
consistent-hash ring the DIM connectors use (:mod:`repro.cluster`), written
to ``replicas`` servers, and read with hedging, failover and read-repair.
Because placement is deterministic, every process pointed at the same
``nodes`` list computes identical owners — keys stay plain
:class:`ConnectorKey` tuples with no embedded location.
"""
from __future__ import annotations

from typing import Any
from typing import Iterable
from typing import Sequence

from repro.cluster.client import ClusterClient
from repro.cluster.client import DEFAULT_HEDGE_THRESHOLD
from repro.cluster.membership import ClusterMembership
from repro.cluster.membership import DEFAULT_FAILURE_THRESHOLD
from repro.cluster.rebalance import Rebalancer
from repro.cluster.ring import DEFAULT_VNODES
from repro.connectors.protocol import Connector
from repro.connectors.protocol import ConnectorCapabilities
from repro.connectors.protocol import ConnectorKey
from repro.connectors.protocol import PutData
from repro.connectors.protocol import new_object_id
from repro.connectors.registry import StoreURL
from repro.exceptions import ConnectorError
from repro.kvserver.client import DEFAULT_POOL_SIZE
from repro.kvserver.client import DEFAULT_TIMEOUT
from repro.kvserver.client import KVClient
from repro.kvserver.server import launch_server

__all__ = ['RedisConnector']


def _parse_node(node: Any) -> tuple[str, int]:
    """Normalize a cluster node spec (``'host:port'`` or tuple) to an address."""
    if isinstance(node, str):
        host, sep, port = node.rpartition(':')
        if not sep or not port.isdigit():
            raise ConnectorError(
                f'malformed cluster node {node!r}: expected host:port',
            )
        return (host, int(port))
    if isinstance(node, (tuple, list)) and len(node) == 2:
        return (str(node[0]), int(node[1]))
    raise ConnectorError(
        f'malformed cluster node {node!r}: expected host:port or (host, port)',
    )


class _KVNodeBackend:
    """One SimKV server as a cluster node (drives the replication engine)."""

    __slots__ = ('_client',)

    def __init__(self, client: KVClient) -> None:
        self._client = client

    def put(self, key: str, value: Any) -> None:
        self._client.set(key, value)

    def put_batch(self, items: Sequence[tuple[str, Any]]) -> None:
        self._client.mset(items)

    def get(self, key: str) -> Any | None:
        return self._client.get(key)

    def get_batch(self, keys: Sequence[str]) -> list[Any]:
        return self._client.mget(keys)

    def exists(self, key: str) -> bool:
        return self._client.exists(key)

    def evict(self, key: str) -> None:
        self._client.delete(key)

    def evict_batch(self, keys: Sequence[str]) -> None:
        self._client.mdel(keys)

    def keys(self) -> list[str]:
        return self._client.keys()


class RedisConnector(Connector):
    """Connector storing objects on a central SimKV (Redis stand-in) server.

    Args:
        host: server host name.
        port: server port.  With ``launch=True`` and ``port=0`` a fresh
            in-process server is started and its ephemeral port recorded so
            that ``config()`` round-trips point at the same server.
        launch: start an in-process server if one is not already reachable.
        pool_size: connections the pipelined KV client pools; requests from
            concurrent store users round-robin across them, so a bulk
            transfer does not head-of-line block small operations.
        timeout: per-request inactivity bound (seconds) — a request fails
            only after its connection receives nothing for this long.
        nodes: cluster mode — ``'host:port'`` strings (or ``(host, port)``
            tuples) of several SimKV servers.  Non-empty ``nodes`` replaces
            the single central server with consistent-hash placement across
            them; ``host``/``port``/``launch`` are then ignored.
        launch_nodes: start this many in-process SimKV servers and use them
            as the cluster (convenience for tests; mutually exclusive with
            ``nodes``).
        replicas: copies written per key in cluster mode.
        ring_vnodes: virtual ring points per node.
        hedge_threshold: seconds of primary silence before a read is hedged
            to the second replica.
        failure_threshold: consecutive unreachable failures before a node
            is declared dead and dropped from the ring.
        rebalance: re-replicate ring-delta keys in the background after
            membership changes.
        rebalance_throttle: optional bytes/second cap on migration copies.
    """

    connector_name = 'redis'
    scheme = 'redis'
    supports_buffers = True
    capabilities = ConnectorCapabilities(
        storage='hybrid',
        intra_site=True,
        inter_site=False,
        persistence=True,
        tags=('redis', 'central-server'),
    )

    def __init__(
        self,
        host: str = '127.0.0.1',
        port: int = 0,
        *,
        launch: bool = False,
        pool_size: int = DEFAULT_POOL_SIZE,
        timeout: float = DEFAULT_TIMEOUT,
        nodes: Sequence[Any] = (),
        launch_nodes: int = 0,
        replicas: int = 2,
        ring_vnodes: int = DEFAULT_VNODES,
        hedge_threshold: float = DEFAULT_HEDGE_THRESHOLD,
        failure_threshold: int = DEFAULT_FAILURE_THRESHOLD,
        rebalance: bool = True,
        rebalance_throttle: float | None = None,
    ) -> None:
        if nodes and launch_nodes:
            raise ConnectorError('pass either nodes or launch_nodes, not both')
        if launch_nodes:
            launched = [launch_server('127.0.0.1', 0) for _ in range(launch_nodes)]
            nodes = [(s.host, s.port) for s in launched]
        self.pool_size = pool_size
        self.timeout = timeout
        self.replicas = replicas
        self.ring_vnodes = ring_vnodes
        self.hedge_threshold = hedge_threshold
        self.failure_threshold = failure_threshold
        self.rebalance_throttle = rebalance_throttle
        self._cluster: ClusterClient | None = None
        self._rebalancer: Rebalancer | None = None
        self._node_addrs: dict[str, tuple[str, int]] = {}
        self._node_clients: list[KVClient] = []
        if nodes:
            addresses = [_parse_node(node) for node in nodes]
            self.nodes = tuple(f'{h}:{p}' for h, p in addresses)
            self._node_addrs = dict(zip(self.nodes, addresses))
            # The primary host/port fields point at the first node so that
            # repr/config stay meaningful; the cluster does the routing.
            host, port = addresses[0]
            self.host, self.port = host, port
            self._client = None
            membership = ClusterMembership(
                self.nodes,
                vnodes=ring_vnodes,
                failure_threshold=failure_threshold,
            )
            self._cluster = ClusterClient(
                self._node_backend,
                membership,
                replicas=replicas,
                hedge_threshold=hedge_threshold,
            )
            if rebalance:
                self._rebalancer = Rebalancer(
                    self._cluster,
                    throttle_bytes_per_s=rebalance_throttle,
                )
        else:
            self.nodes = ()
            if launch:
                server = launch_server(host, port)
                assert server.port is not None
                host, port = server.host, server.port
            self.host = host
            self.port = port
            self._client = KVClient(
                host, port, pool_size=pool_size, timeout=timeout,
            )

    def _node_backend(self, node_id: str) -> _KVNodeBackend:
        host, port = self._node_addrs[node_id]
        client = KVClient(
            host, port, pool_size=self.pool_size, timeout=self.timeout,
        )
        self._node_clients.append(client)
        return _KVNodeBackend(client)

    def __repr__(self) -> str:
        if self._cluster is not None:
            return f'RedisConnector(nodes={list(self.nodes)!r})'
        return f'RedisConnector(host={self.host!r}, port={self.port})'

    # -- primary operations --------------------------------------------- #
    def put(self, data: PutData) -> ConnectorKey:
        key = ConnectorKey(object_id=new_object_id(), connector=self.connector_name)
        if self._cluster is not None:
            self._cluster.put(key.object_id, data)
        else:
            # The KV client scatter/gathers the payload's segments straight
            # out of the caller's buffers (pickle-5 out-of-band) — no local
            # copy.
            self._client.set(key.object_id, data)
        return key

    def get(self, key: ConnectorKey) -> 'bytes | bytearray | memoryview | None':
        if self._cluster is not None:
            return self._cluster.get(key.object_id)
        return self._client.get(key.object_id)

    def exists(self, key: ConnectorKey) -> bool:
        if self._cluster is not None:
            return self._cluster.exists(key.object_id)
        return self._client.exists(key.object_id)

    def evict(self, key: ConnectorKey) -> None:
        if self._cluster is not None:
            self._cluster.evict(key.object_id)
        else:
            self._client.delete(key.object_id)

    # -- batch operations (one MSET/MGET round trip per batch) ------------- #
    def put_batch(self, datas: Sequence[PutData]) -> list[ConnectorKey]:
        keys = [
            ConnectorKey(object_id=new_object_id(), connector=self.connector_name)
            for _ in datas
        ]
        items = [(key.object_id, data) for key, data in zip(keys, datas)]
        if self._cluster is not None:
            self._cluster.put_batch(items)
        else:
            self._client.mset(items)
        return keys

    def get_batch(self, keys: Iterable[ConnectorKey]) -> list[Any]:
        object_ids = [key.object_id for key in keys]
        if self._cluster is not None:
            return self._cluster.get_batch(object_ids)
        return self._client.mget(object_ids)

    def evict_batch(self, keys: Iterable[ConnectorKey]) -> None:
        object_ids = [key.object_id for key in keys]
        if self._cluster is not None:
            self._cluster.evict_batch(object_ids)
        else:
            self._client.mdel(object_ids)

    # -- deferred writes -------------------------------------------------- #
    def new_key(self) -> ConnectorKey:
        return ConnectorKey(object_id=new_object_id(), connector=self.connector_name)

    def set(self, key: ConnectorKey, data: PutData) -> None:
        if self._cluster is not None:
            self._cluster.put(key.object_id, data)
        else:
            self._client.set(key.object_id, data)

    def set_batch(self, items: Sequence[tuple[ConnectorKey, PutData]]) -> None:
        # One MSET round trip (or one clustered batch put) for the whole
        # coalesced buffer instead of a wire write per key.
        pairs = [(key.object_id, data) for key, data in items]
        if self._cluster is not None:
            self._cluster.put_batch(pairs)
        else:
            self._client.mset(pairs)

    # -- cluster ----------------------------------------------------------- #
    def bind_metrics(self, metrics: Any) -> None:
        """Thread per-node health and cluster events into store metrics."""
        if self._cluster is not None:
            self._cluster.bind_metrics(metrics)

    def cluster_health(self) -> dict[str, Any]:
        """Membership, per-node health, and self-healing counters."""
        if self._cluster is None:
            return {'clustered': False, 'replicas': 1}
        health = {
            'clustered': True,
            'replicas': self.replicas,
            'ring_vnodes': self._cluster.membership.vnodes,
            'ring': list(self._cluster.membership.ring.nodes),
            'nodes': self._cluster.membership.health(),
            'stats': self._cluster.stats.as_dict(),
        }
        if self._rebalancer is not None:
            health['rebalance'] = self._rebalancer.stats.as_dict()
        return health

    def join_node(self, node: Any) -> None:
        """Add a ``host:port`` SimKV server to the cluster."""
        if self._cluster is None:
            raise ConnectorError('join_node requires a clustered RedisConnector')
        address = _parse_node(node)
        node_id = f'{address[0]}:{address[1]}'
        self._node_addrs[node_id] = address
        self.nodes = tuple(dict.fromkeys((*self.nodes, node_id)))
        self._cluster.membership.join(node_id)

    def leave_node(self, node: Any) -> None:
        """Voluntarily drain a ``host:port`` server out of the cluster."""
        if self._cluster is None:
            raise ConnectorError('leave_node requires a clustered RedisConnector')
        address = _parse_node(node)
        self._cluster.membership.leave(f'{address[0]}:{address[1]}')

    # -- configuration / lifecycle --------------------------------------- #
    def config(self) -> dict[str, Any]:
        config: dict[str, Any] = {
            'host': self.host,
            'port': self.port,
            'pool_size': self.pool_size,
            'timeout': self.timeout,
        }
        if self._cluster is not None:
            config.update(
                nodes=list(self.nodes),
                replicas=self.replicas,
                ring_vnodes=self.ring_vnodes,
                hedge_threshold=self.hedge_threshold,
                failure_threshold=self.failure_threshold,
                rebalance=self._rebalancer is not None,
                rebalance_throttle=self.rebalance_throttle,
            )
        return config

    @classmethod
    def from_url(cls, url: StoreURL | str) -> 'RedisConnector':
        """Build from ``redis://host:port[/name][?launch=1&pool_size=4&timeout=30]``.

        Cluster mode adds ``nodes=h1:p1,h2:p2`` (or ``launch_nodes=N``),
        ``replicas``, ``ring_vnodes``, ``hedge_threshold``,
        ``failure_threshold``, ``rebalance``, and ``rebalance_throttle``.
        The path (if any) is left for ``Store.from_url`` to use as the store
        name, mirroring Redis database-namespace URLs.
        """
        url = StoreURL.parse(url)
        pool_size = url.pop_int('pool_size', DEFAULT_POOL_SIZE)
        timeout = url.pop_float('timeout', DEFAULT_TIMEOUT)
        nodes = url.pop_tags('nodes')
        launch_nodes = url.pop_int('launch_nodes', 0)
        replicas = url.pop_int('replicas', 2)
        ring_vnodes = url.pop_int('ring_vnodes', DEFAULT_VNODES)
        hedge_threshold = url.pop_float('hedge_threshold', DEFAULT_HEDGE_THRESHOLD)
        failure_threshold = url.pop_int('failure_threshold', DEFAULT_FAILURE_THRESHOLD)
        rebalance = url.pop_bool('rebalance', True)
        rebalance_throttle = url.pop_float('rebalance_throttle', None)
        assert pool_size is not None and timeout is not None
        assert launch_nodes is not None and replicas is not None
        assert ring_vnodes is not None and hedge_threshold is not None
        assert failure_threshold is not None
        return cls(
            host=url.host or '127.0.0.1',
            port=url.port or 0,
            launch=url.pop_bool('launch', False),
            pool_size=pool_size,
            timeout=timeout,
            nodes=nodes,
            launch_nodes=launch_nodes,
            replicas=replicas,
            ring_vnodes=ring_vnodes,
            hedge_threshold=hedge_threshold,
            failure_threshold=failure_threshold,
            rebalance=rebalance,
            rebalance_throttle=rebalance_throttle,
        )

    def close(self, clear: bool = False) -> None:
        if self._rebalancer is not None:
            self._rebalancer.stop()
        if self._cluster is not None:
            if clear:
                for node_id in self._cluster.membership.reachable():
                    try:
                        self._cluster.backend(node_id)._client.flush()
                    # repro: ignore[RP004] - best-effort flush during
                    # teardown; the node may already be gone
                    except Exception:  # noqa: BLE001 - node may be gone
                        pass
            self._cluster.close()
            for client in self._node_clients:
                client.close()
            self._node_clients.clear()
            return
        if clear:
            try:
                self._client.flush()
            # repro: ignore[RP004] - best-effort flush during teardown;
            # the server may already be gone
            except Exception:  # noqa: BLE001 - server may already be gone
                pass
        self._client.close()
