"""Redis-style connector backed by the SimKV server.

The paper's ``RedisConnector`` is a ~30 line interface to an existing Redis
or KeyDB server, giving hybrid in-memory/on-disk storage with low latency and
easy configuration.  Real Redis is unavailable offline, so this connector
talks to the SimKV TCP key-value server (:mod:`repro.kvserver`) instead —
same architecture (central server, one socket round-trip per operation),
different wire protocol.

A connector can either attach to an already running server (``host``/``port``)
or start an in-process server on demand (``launch=True``), which is the
convenient mode for tests and examples.
"""
from __future__ import annotations

from typing import Any
from typing import Iterable
from typing import Sequence

from repro.connectors.protocol import Connector
from repro.connectors.protocol import ConnectorCapabilities
from repro.connectors.protocol import ConnectorKey
from repro.connectors.protocol import PutData
from repro.connectors.protocol import new_object_id
from repro.connectors.registry import StoreURL
from repro.kvserver.client import DEFAULT_POOL_SIZE
from repro.kvserver.client import DEFAULT_TIMEOUT
from repro.kvserver.client import KVClient
from repro.kvserver.server import launch_server

__all__ = ['RedisConnector']


class RedisConnector(Connector):
    """Connector storing objects on a central SimKV (Redis stand-in) server.

    Args:
        host: server host name.
        port: server port.  With ``launch=True`` and ``port=0`` a fresh
            in-process server is started and its ephemeral port recorded so
            that ``config()`` round-trips point at the same server.
        launch: start an in-process server if one is not already reachable.
        pool_size: connections the pipelined KV client pools; requests from
            concurrent store users round-robin across them, so a bulk
            transfer does not head-of-line block small operations.
        timeout: per-request inactivity bound (seconds) — a request fails
            only after its connection receives nothing for this long.
    """

    connector_name = 'redis'
    scheme = 'redis'
    supports_buffers = True
    capabilities = ConnectorCapabilities(
        storage='hybrid',
        intra_site=True,
        inter_site=False,
        persistence=True,
        tags=('redis', 'central-server'),
    )

    def __init__(
        self,
        host: str = '127.0.0.1',
        port: int = 0,
        *,
        launch: bool = False,
        pool_size: int = DEFAULT_POOL_SIZE,
        timeout: float = DEFAULT_TIMEOUT,
    ) -> None:
        if launch:
            server = launch_server(host, port)
            assert server.port is not None
            host, port = server.host, server.port
        self.host = host
        self.port = port
        self.pool_size = pool_size
        self.timeout = timeout
        self._client = KVClient(host, port, pool_size=pool_size, timeout=timeout)

    def __repr__(self) -> str:
        return f'RedisConnector(host={self.host!r}, port={self.port})'

    # -- primary operations --------------------------------------------- #
    def put(self, data: PutData) -> ConnectorKey:
        key = ConnectorKey(object_id=new_object_id(), connector=self.connector_name)
        # The KV client scatter/gathers the payload's segments straight out
        # of the caller's buffers (pickle-5 out-of-band) — no local copy.
        self._client.set(key.object_id, data)
        return key

    def get(self, key: ConnectorKey) -> 'bytes | bytearray | memoryview | None':
        return self._client.get(key.object_id)

    def exists(self, key: ConnectorKey) -> bool:
        return self._client.exists(key.object_id)

    def evict(self, key: ConnectorKey) -> None:
        self._client.delete(key.object_id)

    # -- batch operations (one MSET/MGET round trip per batch) ------------- #
    def put_batch(self, datas: Sequence[PutData]) -> list[ConnectorKey]:
        keys = [
            ConnectorKey(object_id=new_object_id(), connector=self.connector_name)
            for _ in datas
        ]
        self._client.mset(
            [(key.object_id, data) for key, data in zip(keys, datas)],
        )
        return keys

    def get_batch(self, keys: Iterable[ConnectorKey]) -> list[Any]:
        return self._client.mget([key.object_id for key in keys])

    def evict_batch(self, keys: Iterable[ConnectorKey]) -> None:
        self._client.mdel([key.object_id for key in keys])

    # -- deferred writes -------------------------------------------------- #
    def new_key(self) -> ConnectorKey:
        return ConnectorKey(object_id=new_object_id(), connector=self.connector_name)

    def set(self, key: ConnectorKey, data: PutData) -> None:
        self._client.set(key.object_id, data)

    # -- configuration / lifecycle --------------------------------------- #
    def config(self) -> dict[str, Any]:
        return {
            'host': self.host,
            'port': self.port,
            'pool_size': self.pool_size,
            'timeout': self.timeout,
        }

    @classmethod
    def from_url(cls, url: StoreURL | str) -> 'RedisConnector':
        """Build from ``redis://host:port[/name][?launch=1&pool_size=4&timeout=30]``.

        The path (if any) is left for ``Store.from_url`` to use as the store
        name, mirroring Redis database-namespace URLs.
        """
        url = StoreURL.parse(url)
        pool_size = url.pop_int('pool_size', DEFAULT_POOL_SIZE)
        timeout = url.pop_float('timeout', DEFAULT_TIMEOUT)
        assert pool_size is not None and timeout is not None
        return cls(
            host=url.host or '127.0.0.1',
            port=url.port or 0,
            launch=url.pop_bool('launch', False),
            pool_size=pool_size,
            timeout=timeout,
        )

    def close(self, clear: bool = False) -> None:
        if clear:
            try:
                self._client.flush()
            except Exception:  # noqa: BLE001 - server may already be gone
                pass
        self._client.close()
