"""ZeroMQ-flavoured distributed in-memory connector.

The paper provides ``ZMQConnector`` as a compatibility fallback when RDMA
stacks are unavailable: plain sockets to per-node storage servers.  This
reproduction uses the DIM substrate's ``'tcp'`` transport — a real TCP server
per node — so this connector genuinely moves bytes through the loopback
network stack.
"""
from __future__ import annotations

from repro.connectors.dim_base import DIMConnectorBase
from repro.connectors.protocol import ConnectorCapabilities

__all__ = ['ZMQConnector']


class ZMQConnector(DIMConnectorBase):
    """Distributed in-memory connector using real TCP per-node servers."""

    connector_name = 'zmq'
    scheme = 'zmq'
    transport = 'tcp'
    capabilities = ConnectorCapabilities(
        storage='memory',
        intra_site=True,
        inter_site=False,
        persistence=False,
        tags=('distributed-memory', 'tcp', 'zmq'),
    )
