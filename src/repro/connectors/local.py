"""In-process connector backed by a plain dictionary.

``LocalConnector`` keeps objects in the memory of the creating process.  It
is the cheapest possible mediated channel and is used pervasively in tests,
examples, and as the default low-priority fallback in MultiConnector
configurations.  Because the backing dictionary can optionally be shared
(passed in), several LocalConnector instances within a process can present a
single logical store — which is how the simulated multi-process substrates
model "same host" communication.
"""
from __future__ import annotations

import threading
from typing import Any
from typing import Iterable
from typing import Sequence

from repro.connectors.protocol import Connector
from repro.connectors.protocol import ConnectorCapabilities
from repro.connectors.protocol import ConnectorKey
from repro.connectors.protocol import PutData
from repro.connectors.protocol import new_object_id
from repro.connectors.registry import StoreURL
from repro.serialize.buffers import SerializedObject
from repro.serialize.buffers import freeze_payload

__all__ = ['LocalConnector']

# Named in-process stores so that a connector re-created from its config in
# the *same* process (the common test situation) sees the same data.
_GLOBAL_STORES: dict[str, dict[ConnectorKey, Any]] = {}
_GLOBAL_LOCK = threading.Lock()


class LocalConnector(Connector):
    """Connector storing objects in process-local memory.

    Args:
        store_id: optional name of a process-global dictionary to use.  Two
            LocalConnectors created with the same ``store_id`` share data.
            When omitted a fresh anonymous dictionary is used (and a random
            ``store_id`` is generated so ``config()`` round-trips within the
            process).
    """

    connector_name = 'local'
    scheme = 'local'
    supports_buffers = True
    capabilities = ConnectorCapabilities(
        storage='memory',
        intra_site=False,
        inter_site=False,
        persistence=False,
        tags=('local', 'testing'),
    )

    def __init__(self, store_id: str | None = None) -> None:
        self.store_id = store_id if store_id is not None else new_object_id()
        with _GLOBAL_LOCK:
            self._store = _GLOBAL_STORES.setdefault(self.store_id, {})
        self._lock = threading.Lock()

    def __repr__(self) -> str:
        return f'LocalConnector(store_id={self.store_id!r})'

    # -- primary operations --------------------------------------------- #
    def put(self, data: PutData) -> ConnectorKey:
        key = ConnectorKey(object_id=new_object_id(), connector=self.connector_name)
        # freeze_payload keeps immutable bytes (and all-bytes
        # SerializedObjects) by reference: a put of serialized ``bytes``
        # data is stored with zero copies.
        with self._lock:
            self._store[key] = freeze_payload(data)
        return key

    def get(self, key: ConnectorKey) -> 'bytes | SerializedObject | None':
        with self._lock:
            return self._store.get(key)

    def exists(self, key: ConnectorKey) -> bool:
        with self._lock:
            return key in self._store

    def evict(self, key: ConnectorKey) -> None:
        with self._lock:
            self._store.pop(key, None)

    # -- batch operations -------------------------------------------------- #
    def put_batch(self, datas: Sequence[PutData]) -> list[ConnectorKey]:
        keys = [
            ConnectorKey(object_id=new_object_id(), connector=self.connector_name)
            for _ in datas
        ]
        frozen = [freeze_payload(data) for data in datas]
        with self._lock:
            for key, data in zip(keys, frozen):
                self._store[key] = data
        return keys

    def get_batch(self, keys: Iterable[ConnectorKey]) -> list[Any]:
        with self._lock:
            return [self._store.get(key) for key in keys]

    def evict_batch(self, keys: Iterable[ConnectorKey]) -> None:
        with self._lock:
            for key in keys:
                self._store.pop(key, None)

    # -- deferred writes -------------------------------------------------- #
    def new_key(self) -> ConnectorKey:
        return ConnectorKey(object_id=new_object_id(), connector=self.connector_name)

    def set(self, key: ConnectorKey, data: PutData) -> None:
        with self._lock:
            self._store[key] = freeze_payload(data)

    def set_batch(self, items: Sequence[tuple[ConnectorKey, PutData]]) -> None:
        frozen = [(key, freeze_payload(data)) for key, data in items]
        with self._lock:
            for key, data in frozen:
                self._store[key] = data

    # -- configuration / lifecycle --------------------------------------- #
    def config(self) -> dict[str, Any]:
        return {'store_id': self.store_id}

    @classmethod
    def from_url(cls, url: StoreURL | str) -> 'LocalConnector':
        """Build from ``local://[store_id]`` (empty netloc = anonymous store)."""
        url = StoreURL.parse(url)
        return cls(store_id=url.netloc or None)

    def close(self, clear: bool = False) -> None:
        if clear:
            with _GLOBAL_LOCK:
                _GLOBAL_STORES.pop(self.store_id, None)
            with self._lock:
                self._store = {}

    def __len__(self) -> int:
        with self._lock:
            return len(self._store)
