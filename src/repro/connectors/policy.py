"""Policies governing which connector a MultiConnector routes an object to.

A :class:`Policy` describes the conditions under which a managed connector is
suitable for an object (Section 4.3 of the paper): minimum/maximum object
sizes (its ideal operating range), tags describing where the connector is
accessible (e.g. only within one cluster, or at multiple sites), and a
priority for breaking ties when several connectors are suitable.
"""
from __future__ import annotations

from dataclasses import dataclass
from dataclasses import field
from typing import Any
from typing import Iterable

__all__ = ['Policy']


@dataclass(frozen=True)
class Policy:
    """Constraints describing when a connector should be used.

    Attributes:
        min_size_bytes: smallest object (serialized size) this connector
            should handle.
        max_size_bytes: largest object this connector should handle
            (``None`` means unbounded).
        subset_tags: tags this connector supports; an operation requesting
            ``subset_tags`` matches only if the requested tags are a subset
            of these.
        superset_tags: tags this connector *requires*; an operation matches
            only if it supplies a superset of these (e.g. a connector only
            reachable from hosts tagged ``'cluster-a'``).
        priority: higher wins among all matching connectors.
    """

    min_size_bytes: int = 0
    max_size_bytes: int | None = None
    subset_tags: tuple[str, ...] = field(default_factory=tuple)
    superset_tags: tuple[str, ...] = field(default_factory=tuple)
    priority: int = 0

    def __post_init__(self) -> None:
        if self.min_size_bytes < 0:
            raise ValueError('min_size_bytes must be non-negative')
        if self.max_size_bytes is not None and self.max_size_bytes < self.min_size_bytes:
            raise ValueError('max_size_bytes must be >= min_size_bytes')

    def is_valid(
        self,
        *,
        size_bytes: int | None = None,
        subset_tags: Iterable[str] = (),
        superset_tags: Iterable[str] = (),
    ) -> bool:
        """Return whether an object with the given constraints matches this policy."""
        if size_bytes is not None:
            if size_bytes < self.min_size_bytes:
                return False
            if self.max_size_bytes is not None and size_bytes > self.max_size_bytes:
                return False
        if not set(subset_tags) <= set(self.subset_tags):
            return False
        if not set(self.superset_tags) <= set(superset_tags):
            return False
        return True

    # -- serialization ------------------------------------------------------ #
    def as_dict(self) -> dict[str, Any]:
        return {
            'min_size_bytes': self.min_size_bytes,
            'max_size_bytes': self.max_size_bytes,
            'subset_tags': list(self.subset_tags),
            'superset_tags': list(self.superset_tags),
            'priority': self.priority,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> 'Policy':
        return cls(
            min_size_bytes=data.get('min_size_bytes', 0),
            max_size_bytes=data.get('max_size_bytes'),
            subset_tags=tuple(data.get('subset_tags', ())),
            superset_tags=tuple(data.get('superset_tags', ())),
            priority=data.get('priority', 0),
        )
