"""MultiConnector: policy-based routing over several connectors (Section 4.3).

Applications with multiple communication patterns register several connectors
each with a :class:`~repro.connectors.policy.Policy`; every ``put`` is routed
to the highest-priority connector whose policy matches the object's size and
the operation's tag constraints.  Keys remember which connector stored the
object so ``get``/``exists``/``evict`` route straight back to it, and the
whole construction is expressible as a plain config dict so proxies created
through a MultiConnector-backed store remain self-contained.
"""
from __future__ import annotations

from typing import Any
from typing import Iterable
from typing import NamedTuple
from typing import Sequence

from repro.connectors.policy import Policy
from repro.connectors.protocol import Connector
from repro.connectors.protocol import ConnectorCapabilities
from repro.connectors.protocol import PutData
from repro.connectors.protocol import connector_from_path
from repro.connectors.protocol import connector_path
from repro.connectors.registry import StoreURL
from repro.connectors.registry import get_connector_class
from repro.exceptions import NoPolicyMatchError
from repro.serialize.buffers import payload_nbytes
from repro.serialize.buffers import to_bytes

__all__ = ['MultiConnector', 'MultiKey']


class MultiKey(NamedTuple):
    """Key of an object stored through a MultiConnector."""

    connector_label: str
    inner_key: Any


class MultiConnector(Connector):
    """Connector routing operations across several managed connectors.

    Args:
        connectors: mapping of label to ``(connector, policy)`` pairs.  Labels
            are embedded in keys, so they must be stable across processes.
    """

    connector_name = 'multi'
    scheme = 'multi'
    supports_buffers = True
    capabilities = ConnectorCapabilities(
        storage='hybrid',
        intra_site=True,
        inter_site=True,
        persistence=False,
        tags=('multi', 'policy-routing'),
    )

    def __init__(self, connectors: dict[str, tuple[Connector, Policy]]) -> None:
        if not connectors:
            raise ValueError('MultiConnector requires at least one managed connector')
        self.connectors = dict(connectors)

    def __repr__(self) -> str:
        return f'MultiConnector(labels={sorted(self.connectors)!r})'

    # -- routing ------------------------------------------------------------ #
    def _select(
        self,
        size_bytes: int | None,
        subset_tags: Iterable[str],
        superset_tags: Iterable[str],
    ) -> tuple[str, Connector]:
        matches: list[tuple[int, str, Connector]] = []
        for label, (connector, policy) in self.connectors.items():
            if policy.is_valid(
                size_bytes=size_bytes,
                subset_tags=subset_tags,
                superset_tags=superset_tags,
            ):
                matches.append((policy.priority, label, connector))
        if not matches:
            size_desc = (
                f'object of {size_bytes} bytes'
                if size_bytes is not None
                else 'object of unknown size (deferred write)'
            )
            raise NoPolicyMatchError(
                f'no connector policy matches {size_desc} with '
                f'subset_tags={sorted(subset_tags)!r}, '
                f'superset_tags={sorted(superset_tags)!r}',
            )
        matches.sort(key=lambda item: item[0], reverse=True)
        _, label, connector = matches[0]
        return label, connector

    def connector_for(self, label: str) -> Connector:
        """Return the managed connector registered under ``label``."""
        return self.connectors[label][0]

    def policy_for(self, label: str) -> Policy:
        """Return the policy registered under ``label``."""
        return self.connectors[label][1]

    # -- primary operations --------------------------------------------- #
    def put(
        self,
        data: PutData,
        *,
        subset_tags: Iterable[str] = (),
        superset_tags: Iterable[str] = (),
    ) -> MultiKey:
        label, connector = self._select(
            payload_nbytes(data), subset_tags, superset_tags,
        )
        if not getattr(connector, 'supports_buffers', False):
            data = to_bytes(data)
        inner_key = connector.put(data)
        return MultiKey(connector_label=label, inner_key=inner_key)

    def put_batch(
        self,
        datas: Sequence[PutData],
        *,
        subset_tags: Iterable[str] = (),
        superset_tags: Iterable[str] = (),
    ) -> list[MultiKey]:
        return [
            self.put(data, subset_tags=subset_tags, superset_tags=superset_tags)
            for data in datas
        ]

    # -- deferred writes -------------------------------------------------- #
    def new_key(
        self,
        *,
        subset_tags: Iterable[str] = (),
        superset_tags: Iterable[str] = (),
    ) -> MultiKey:
        """Pre-allocate a key for a deferred write (``Store.future``).

        The object's size is unknown at allocation time, so routing only
        considers tag constraints and priority (``Policy.is_valid`` skips
        size bounds when no size is given).
        """
        label, connector = self._select(None, subset_tags, superset_tags)
        return MultiKey(connector_label=label, inner_key=connector.new_key())

    def set(self, key: MultiKey, data: PutData) -> None:
        connector = self.connector_for(key.connector_label)
        if not getattr(connector, 'supports_buffers', False):
            data = to_bytes(data)
        connector.set(key.inner_key, data)

    def get(self, key: MultiKey) -> Any | None:
        connector = self.connector_for(key.connector_label)
        return connector.get(key.inner_key)

    def exists(self, key: MultiKey) -> bool:
        connector = self.connector_for(key.connector_label)
        return connector.exists(key.inner_key)

    def evict(self, key: MultiKey) -> None:
        connector = self.connector_for(key.connector_label)
        connector.evict(key.inner_key)

    def get_batch(self, keys: Iterable[MultiKey]) -> list[Any]:
        """Fetch several keys, batching per managed connector.

        Keys are grouped by the connector that stored them, fetched with
        one ``get_batch`` per inner connector, and returned in input order.
        """
        keys = list(keys)
        by_label: dict[str, list[tuple[int, Any]]] = {}
        for index, key in enumerate(keys):
            by_label.setdefault(key.connector_label, []).append(
                (index, key.inner_key),
            )
        results: list[Any] = [None] * len(keys)
        for label, entries in by_label.items():
            datas = self.connector_for(label).get_batch(
                [inner for _, inner in entries],
            )
            for (index, _), data in zip(entries, datas):
                results[index] = data
        return results

    def evict_batch(self, keys: Iterable[MultiKey]) -> None:
        """Evict several keys with one batched eviction per managed connector.

        Without this override the base-class fallback issued one
        ``evict`` round trip per key — the lifetime-close and
        ``Store.close(clear=True)`` teardown paths through a multi store
        paid per-key latency on connectors that batch natively.
        """
        by_label: dict[str, list[Any]] = {}
        for key in keys:
            by_label.setdefault(key.connector_label, []).append(key.inner_key)
        for label, inner_keys in by_label.items():
            self.connector_for(label).evict_batch(inner_keys)

    # -- configuration / lifecycle --------------------------------------- #
    def config(self) -> dict[str, Any]:
        return {
            'connectors': {
                label: {
                    'connector': connector_path(connector),
                    'connector_config': connector.config(),
                    'policy': policy.as_dict(),
                }
                for label, (connector, policy) in self.connectors.items()
            },
        }

    @classmethod
    def from_config(cls, config: dict[str, Any]) -> 'MultiConnector':
        connectors: dict[str, tuple[Connector, Policy]] = {}
        for label, entry in config['connectors'].items():
            connector = connector_from_path(entry['connector'], entry['connector_config'])
            policy = Policy.from_dict(entry['policy'])
            connectors[label] = (connector, policy)
        return cls(connectors)

    @classmethod
    def from_url(cls, url: StoreURL | str) -> 'MultiConnector':
        """Build from ``multi://?<label>=<percent-encoded inner URL>&...``.

        Each query parameter names one managed connector; its value is a
        full store URL for that connector (resolved recursively through the
        scheme registry) whose own query string carries the
        :class:`~repro.connectors.policy.Policy` fields::

            multi://?fast=redis%3A%2F%2F%3Flaunch%3D1%26priority%3D2
                    &bulk=file%3A%2F%2F%2Ftmp%2Fbulk%3Fmin_size_bytes%3D100001

        Recognized policy parameters on the inner URLs: ``priority``,
        ``min_size_bytes``, ``max_size_bytes``, ``subset_tags``,
        ``superset_tags`` (comma-separated tag lists).
        """
        url = StoreURL.parse(url)
        connectors: dict[str, tuple[Connector, Policy]] = {}
        for label in url.remaining_keys():
            inner_raw = url.pop(label)
            assert inner_raw is not None
            inner = StoreURL.parse(inner_raw)
            policy = Policy(
                min_size_bytes=inner.pop_int('min_size_bytes', 0) or 0,
                max_size_bytes=inner.pop_int('max_size_bytes', None),
                subset_tags=inner.pop_tags('subset_tags'),
                superset_tags=inner.pop_tags('superset_tags'),
                priority=inner.pop_int('priority', 0) or 0,
            )
            inner_cls = get_connector_class(inner.scheme)
            connector = inner_cls.from_url(inner)
            inner.ensure_consumed()
            connectors[label] = (connector, policy)
        return cls(connectors)

    def close(self, clear: bool = False) -> None:
        for connector, _policy in self.connectors.values():
            connector.close(clear=clear)
