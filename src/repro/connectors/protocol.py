"""The ``Connector`` protocol: a low-level interface to a mediated channel.

A connector operates on byte strings and keys (Section 3.4 of the paper):
``put`` stores a byte string and returns a unique key, ``get`` retrieves it,
``exists`` checks for it, and ``evict`` removes it.  Connectors additionally
expose ``config()``/``from_config()`` so that a connector — and therefore the
Store wrapping it — can be re-created in a different process from the plain
dictionary embedded in a proxy's factory.

Third-party connectors only need to implement this interface to be
plug-and-play with the rest of the library (Stores, proxies, the
MultiConnector, the FaaS and workflow substrates, and the benchmarks).
"""
from __future__ import annotations

import importlib
import uuid
from abc import ABC
from abc import abstractmethod
from dataclasses import dataclass
from dataclasses import field
from typing import Any
from typing import Iterable
from typing import NamedTuple
from typing import Sequence
from typing import Union

from repro.connectors.registry import StoreURL
from repro.connectors.registry import register_connector
from repro.serialize.buffers import BytesLike
from repro.serialize.buffers import SerializedObject

__all__ = [
    'Connector',
    'ConnectorCapabilities',
    'ConnectorKey',
    'PutData',
    'connector_from_path',
    'connector_path',
    'new_object_id',
]

PutData = Union[BytesLike, SerializedObject]
"""Payload types accepted by ``Connector.put``/``put_batch``/``set``."""


class ConnectorKey(NamedTuple):
    """Default key type: a unique object id plus the connector's name.

    Individual connectors may define richer key tuples (e.g. the Globus
    connector's ``(object_id, task_id)``); all key types must be hashable and
    picklable so they can be embedded in proxy factories.
    """

    object_id: str
    connector: str


@dataclass(frozen=True)
class ConnectorCapabilities:
    """Static capability description, mirroring Table 1 of the paper.

    Attributes:
        storage: ``'memory'``, ``'disk'``, or ``'hybrid'``.
        intra_site: usable between hosts within one site / LAN.
        inter_site: usable between hosts at different sites (across NATs).
        persistence: objects survive the producing process exiting.
    """

    storage: str = 'memory'
    intra_site: bool = True
    inter_site: bool = False
    persistence: bool = False
    tags: tuple[str, ...] = field(default_factory=tuple)


def new_object_id() -> str:
    """Return a fresh globally-unique object identifier."""
    return uuid.uuid4().hex


def connector_path(connector: 'Connector | type[Connector]') -> str:
    """Return the import path (``module:ClassName``) of a connector class."""
    cls = connector if isinstance(connector, type) else type(connector)
    return f'{cls.__module__}:{cls.__qualname__}'


def connector_from_path(path: str, config: dict[str, Any]) -> 'Connector':
    """Instantiate a connector from an import path and its ``config()`` dict."""
    module_name, _, qualname = path.partition(':')
    module = importlib.import_module(module_name)
    obj: Any = module
    for part in qualname.split('.'):
        obj = getattr(obj, part)
    return obj.from_config(config)


class Connector(ABC):
    """Abstract base class for mediated communication channels.

    Concrete connectors must implement the four primary byte-level operations
    plus ``config``/``from_config``.  Batch operations and ``close`` have
    sensible defaults but may be overridden for efficiency (e.g. the Globus
    connector submits one transfer task per batch).
    """

    #: Human readable connector name used in keys, metrics and reports.
    connector_name: str = 'connector'
    #: URI scheme this connector is addressable under (``Store.from_url``).
    #: Subclasses that set a scheme are automatically registered in the
    #: scheme registry; leave ``None`` for wrapper/abstract connectors.
    scheme: str | None = None
    #: Capability summary (Table 1).
    capabilities: ConnectorCapabilities = ConnectorCapabilities()
    #: Whether ``put``/``put_batch``/``set`` consume
    #: :class:`~repro.serialize.buffers.SerializedObject` segments without
    #: first joining them into one contiguous byte string (the zero-copy
    #: data path).  Connectors without the flag still accept a
    #: ``SerializedObject`` — it is coerced with ``bytes()`` (one copy).
    supports_buffers: bool = False

    def __init_subclass__(cls, **kwargs: Any) -> None:
        super().__init_subclass__(**kwargs)
        # Only classes that declare their *own* scheme self-register, so
        # subclassing a registered connector does not steal its scheme.
        scheme = cls.__dict__.get('scheme')
        if scheme:
            register_connector(scheme, cls)

    # -- primary operations --------------------------------------------- #
    @abstractmethod
    def put(self, data: PutData) -> Any:
        """Store ``data`` and return a unique, picklable key.

        ``data`` may be any :data:`PutData`; connectors with
        ``supports_buffers`` write a ``SerializedObject``'s segments
        directly, others coerce it to contiguous bytes first.
        """

    @abstractmethod
    def get(self, key: Any) -> 'BytesLike | SerializedObject | None':
        """Return the data stored under ``key`` or ``None`` if absent.

        The result is a bytes-like view (possibly a ``memoryview`` over
        received or memory-mapped data) or a stored ``SerializedObject``;
        :func:`repro.serialize.deserialize` accepts every form.
        """

    @abstractmethod
    def exists(self, key: Any) -> bool:
        """Return whether ``key`` currently maps to stored data."""

    @abstractmethod
    def evict(self, key: Any) -> None:
        """Remove ``key`` and its data (no-op if absent)."""

    # -- deferred writes (ProxyFuture support) ---------------------------- #
    def new_key(self) -> Any:
        """Pre-allocate and return a key that :meth:`set` can later fill.

        Deferred writes let a proxy of an object be handed out *before* the
        object is produced (``Store.future``).  Connectors whose keys embed
        information only known at write time cannot support this and keep
        the default, which raises ``NotImplementedError``.
        """
        raise NotImplementedError(
            f'{type(self).__name__} does not support deferred writes',
        )

    def set(self, key: Any, data: PutData) -> None:
        """Store ``data`` under the pre-allocated ``key`` (see :meth:`new_key`)."""
        raise NotImplementedError(
            f'{type(self).__name__} does not support deferred writes',
        )

    def set_batch(self, items: Sequence[tuple[Any, PutData]]) -> None:
        """Store several ``(key, data)`` pairs under pre-allocated keys.

        The substrate of store-level write coalescing: connectors with a
        native multi-set (e.g. Redis ``MSET``) override this to turn a batch
        of tiny deferred writes into one wire operation.  The default loops
        over :meth:`set`, so any connector with deferred writes coalesces
        correctly, just without the round-trip savings.
        """
        for key, data in items:
            self.set(key, data)

    # -- configuration / lifecycle --------------------------------------- #
    @abstractmethod
    def config(self) -> dict[str, Any]:
        """Return a picklable dict sufficient to re-create this connector."""

    @classmethod
    def from_config(cls, config: dict[str, Any]) -> 'Connector':
        """Create a connector instance from a ``config()`` dictionary."""
        return cls(**config)  # type: ignore[call-arg]

    @classmethod
    def from_url(cls, url: 'StoreURL | str') -> 'Connector':
        """Create a connector from a parsed store URL (``Store.from_url``).

        Subclasses override this to consume the pieces of the URL they
        understand (netloc, path, query parameters); parameters left
        unconsumed make ``Store.from_url`` raise, so typos fail loudly.
        """
        raise NotImplementedError(
            f'{cls.__name__} cannot be constructed from a URL',
        )

    def close(self, clear: bool = False) -> None:
        """Release connector resources.

        Args:
            clear: also remove all stored objects where that is meaningful.
        """

    # -- batch operations ------------------------------------------------ #
    def put_batch(self, datas: Sequence[PutData]) -> list[Any]:
        """Store several payloads, returning one key per input."""
        return [self.put(data) for data in datas]

    def get_batch(self, keys: Iterable[Any]) -> 'list[BytesLike | SerializedObject | None]':
        """Retrieve several keys, returning ``None`` for any missing key."""
        return [self.get(key) for key in keys]

    def evict_batch(self, keys: Iterable[Any]) -> None:
        """Evict several keys."""
        for key in keys:
            self.evict(key)

    # -- misc ------------------------------------------------------------ #
    def __enter__(self) -> 'Connector':
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    def __repr__(self) -> str:
        return f'{type(self).__name__}()'
