"""Scheme-based connector registry and Store-URL parsing (Store API v2).

Connectors register themselves under a URI scheme (``'redis'``, ``'file'``,
``'multi'``, ...) when their class is defined — see
``Connector.__init_subclass__`` — and :func:`get_connector_class` resolves a
scheme back to its class.  Together with each connector's ``from_url``
classmethod this makes ``Store.from_url('redis://host:6379/ns')`` the
canonical, pluggable way to construct stores: third-party connectors only
need to set a ``scheme`` class attribute and implement ``from_url`` to become
URL-addressable everywhere in the library.

:class:`StoreURL` is the parsed form handed to ``from_url``.  It tracks which
query parameters (and the path) have been consumed so that
``Store.from_url`` can reject typos instead of silently ignoring them.
"""
from __future__ import annotations

import threading
from typing import TYPE_CHECKING
from urllib.parse import parse_qs
from urllib.parse import urlsplit

from repro.exceptions import ConnectorSchemeExistsError
from repro.exceptions import UnknownConnectorSchemeError

if TYPE_CHECKING:  # pragma: no cover - import cycle avoidance
    from repro.connectors.protocol import Connector

__all__ = [
    'StoreURL',
    'get_connector_class',
    'list_connectors',
    'register_connector',
    'unregister_connector',
]

_SCHEMES: dict[str, type] = {}
_LOCK = threading.Lock()
_BUILTINS_LOADED = False


def register_connector(
    scheme: str,
    cls: 'type[Connector]',
    *,
    replace: bool = False,
) -> None:
    """Register ``cls`` as the connector class for ``scheme``.

    Re-registering the same class is a no-op; claiming a scheme held by a
    *different* class raises :class:`ConnectorSchemeExistsError` unless
    ``replace=True``.
    """
    if not isinstance(scheme, str) or not scheme:
        raise ValueError('connector scheme must be a non-empty string')
    scheme = scheme.lower()
    with _LOCK:
        existing = _SCHEMES.get(scheme)
        if existing is not None and existing is not cls and not replace:
            raise ConnectorSchemeExistsError(
                f'scheme {scheme!r} is already registered to '
                f'{existing.__module__}:{existing.__qualname__}; pass '
                'replace=True to override it',
            )
        _SCHEMES[scheme] = cls


def unregister_connector(scheme: str) -> None:
    """Remove ``scheme`` from the registry (no-op if absent)."""
    with _LOCK:
        _SCHEMES.pop(scheme.lower(), None)


def _load_builtin_connectors() -> None:
    """Import the built-in connector modules so they self-register."""
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    _BUILTINS_LOADED = True
    import repro.connectors  # noqa: F401 - imports every built-in connector


def get_connector_class(scheme: str) -> 'type[Connector]':
    """Return the connector class registered under ``scheme``.

    Raises:
        UnknownConnectorSchemeError: if no connector claims the scheme.
    """
    scheme = scheme.lower()
    with _LOCK:
        cls = _SCHEMES.get(scheme)
    if cls is None:
        # First use may precede the import of repro.connectors (e.g. a user
        # who only imported repro.store); load the built-ins and retry.
        _load_builtin_connectors()
        with _LOCK:
            cls = _SCHEMES.get(scheme)
    if cls is None:
        known = ', '.join(sorted(_SCHEMES)) or '<none>'
        raise UnknownConnectorSchemeError(
            f'no connector is registered for scheme {scheme!r} '
            f'(known schemes: {known})',
        )
    return cls


def list_connectors() -> dict[str, 'type[Connector]']:
    """Return a snapshot of the scheme -> connector-class mapping."""
    _load_builtin_connectors()
    with _LOCK:
        return dict(sorted(_SCHEMES.items()))


class StoreURL:
    """A store URL parsed into scheme, netloc, path, and query parameters.

    Connector ``from_url`` implementations *consume* the pieces they
    understand (``pop*`` for query parameters, :meth:`claim_path` for the
    path); ``Store.from_url`` then rejects any leftover query parameters so
    misspelled options fail loudly.
    """

    def __init__(self, url: str) -> None:
        split = urlsplit(url)
        if not split.scheme:
            raise ValueError(f'store URL {url!r} has no scheme')
        self.raw = url
        self.scheme = split.scheme.lower()
        self.netloc = split.netloc
        self.path = split.path
        self.query: dict[str, list[str]] = parse_qs(
            split.query, keep_blank_values=True,
        )
        self.path_consumed = False

    @classmethod
    def parse(cls, url: 'str | StoreURL') -> 'StoreURL':
        """Return ``url`` as a :class:`StoreURL` (idempotent)."""
        return url if isinstance(url, StoreURL) else cls(url)

    def __repr__(self) -> str:
        return f'StoreURL({self.raw!r})'

    # -- netloc helpers --------------------------------------------------- #
    @property
    def host(self) -> str | None:
        """Host part of the netloc (``None`` when the netloc is empty)."""
        if not self.netloc:
            return None
        host, _, maybe_port = self.netloc.rpartition(':')
        if host and maybe_port.isdigit():
            return host
        return self.netloc

    @property
    def port(self) -> int | None:
        """Port part of the netloc, when present."""
        host, _, maybe_port = self.netloc.rpartition(':')
        if host and maybe_port.isdigit():
            return int(maybe_port)
        return None

    # -- path ------------------------------------------------------------- #
    def claim_path(self) -> str:
        """Return the URL path, marking it consumed by the connector."""
        self.path_consumed = True
        return self.path

    # -- query parameters -------------------------------------------------- #
    def pop(self, key: str, default: str | None = None) -> str | None:
        """Consume ``key`` and return its (last) value, or ``default``."""
        values = self.query.pop(key, None)
        if not values:
            return default
        return values[-1]

    def pop_multi(self, key: str) -> list[str]:
        """Consume ``key`` and return every occurrence of it (may be empty)."""
        return self.query.pop(key, [])

    def pop_int(self, key: str, default: int | None = None) -> int | None:
        value = self.pop(key)
        if value is None:
            return default
        return int(value)

    def pop_float(self, key: str, default: float | None = None) -> float | None:
        value = self.pop(key)
        if value is None:
            return default
        return float(value)

    def pop_bool(self, key: str, default: bool = False) -> bool:
        value = self.pop(key)
        if value is None:
            return default
        lowered = value.strip().lower()
        if lowered in ('1', 'true', 'yes', 'on'):
            return True
        if lowered in ('0', 'false', 'no', 'off', ''):
            return False
        raise ValueError(f'cannot interpret {key}={value!r} as a boolean')

    def pop_tags(self, key: str) -> tuple[str, ...]:
        """Consume a comma-separated tag list parameter."""
        value = self.pop(key)
        if value is None:
            return ()
        return tuple(tag for tag in value.split(',') if tag)

    # -- leftover detection ------------------------------------------------ #
    def remaining_keys(self) -> list[str]:
        """Query parameter names that no one has consumed yet, in URL order."""
        return list(self.query)

    def ensure_consumed(self) -> None:
        """Raise ``ValueError`` if any query parameter was left unconsumed."""
        leftover = self.remaining_keys()
        if leftover:
            raise ValueError(
                f'unrecognized parameters in store URL {self.raw!r}: '
                f'{sorted(leftover)}',
            )
