"""Shared implementation of the distributed in-memory connectors.

The Margo, UCX and ZMQ connectors of the paper differ only in the transport
library used to reach the per-node storage servers; the connector logic —
spawn a server on first use, address objects by ``(object_id, node)``, fetch
from whichever node holds the object — is identical.  This module hosts that
shared logic; the concrete connectors below it select the transport and
capability tags.

Transport knobs (all URL-expressible, e.g.
``zmq://node-0?peers=node-0,node-1&shard_threshold=67108864&pool_size=4``):

* ``peers`` — the store's shard targets.  Objects at least
  ``shard_threshold`` bytes are striped across them in parallel and fetched
  back the same way, so one large transfer uses every node's bandwidth.
* ``shard_threshold`` — minimum object size for striping (0 disables).
* ``pool_size`` — socket connections pooled per remote node.

Cluster knobs (see :mod:`repro.cluster`), e.g.
``zmq://node-0?peers=node-0,node-1,node-2&replicas=2``:

* ``replicas`` — copies written per plain object; ``>= 2`` replaces the
  static placement with a consistent-hash ring over ``peers`` and enables
  hedged reads, read-repair, crash failover and background rebalancing.
* ``ring_vnodes`` — virtual ring points per peer (ring placement even with
  ``replicas=1``).
* ``hedge_threshold`` — seconds of primary silence before a read is hedged
  to the second replica.
* ``failure_threshold`` — consecutive unreachable failures before a peer is
  declared dead and dropped from the ring.
* ``rebalance`` / ``rebalance_throttle`` — background ring-delta migration
  on membership changes, optionally byte-rate capped.
"""
from __future__ import annotations

import socket
from typing import Any
from typing import Iterable
from typing import Sequence

from repro.connectors.protocol import Connector
from repro.connectors.protocol import ConnectorCapabilities
from repro.connectors.protocol import PutData
from repro.connectors.protocol import new_object_id
from repro.cluster.client import DEFAULT_HEDGE_THRESHOLD
from repro.cluster.membership import DEFAULT_FAILURE_THRESHOLD
from repro.connectors.registry import StoreURL
from repro.dim.client import DEFAULT_SHARD_THRESHOLD
from repro.kvserver.client import DEFAULT_POOL_SIZE
from repro.kvserver.client import DEFAULT_TIMEOUT
from repro.dim.client import DIMClient
from repro.dim.node import DIMKey
from repro.exceptions import ConnectorError

__all__ = ['DIMConnectorBase']


def _default_node_id() -> str:
    """Logical node identity: hostname (one storage server per node)."""
    return socket.gethostname()


class DIMConnectorBase(Connector):
    """Base class for distributed in-memory store connectors.

    Args:
        node_id: logical node name; defaults to the local hostname so that
            all connectors in one process share the node's storage server.
        peers: shard targets for large objects — node ids or
            ``(node_id, host, port)`` entries; empty disables striping.
        shard_threshold: minimum object size (bytes) to stripe across peers.
        pool_size: connections pooled per remote node.
        timeout: per-request inactivity bound (seconds) for the KV clients.
        replicas: copies written per plain object; ``>= 2`` enables ring
            placement over ``peers`` with replication, hedged reads,
            read-repair and crash failover (``1`` keeps the legacy static
            topology).
        ring_vnodes: virtual ring points per peer (``0`` = legacy unless
            ``replicas >= 2``).
        hedge_threshold: seconds the primary replica may stay silent before
            a read is hedged to the second replica.
        failure_threshold: consecutive unreachable failures before a peer
            is declared dead and dropped from the ring.
        rebalance: migrate ring-delta keys in the background on membership
            changes (clustered mode only).
        rebalance_throttle: optional bytes/second cap on migration copies.
    """

    connector_name = 'dim'
    transport = 'memory'
    supports_buffers = True
    capabilities = ConnectorCapabilities(
        storage='memory',
        intra_site=True,
        inter_site=False,
        persistence=False,
        tags=('distributed-memory',),
    )

    def __init__(
        self,
        node_id: str | None = None,
        *,
        peers: Sequence[Any] = (),
        shard_threshold: int = DEFAULT_SHARD_THRESHOLD,
        pool_size: int = DEFAULT_POOL_SIZE,
        timeout: float = DEFAULT_TIMEOUT,
        replicas: int = 1,
        ring_vnodes: int = 0,
        hedge_threshold: float = DEFAULT_HEDGE_THRESHOLD,
        failure_threshold: int = DEFAULT_FAILURE_THRESHOLD,
        rebalance: bool = True,
        rebalance_throttle: float | None = None,
    ) -> None:
        self.node_id = node_id if node_id is not None else _default_node_id()
        self._client = DIMClient(
            self.node_id,
            self.transport,
            peers=peers,
            shard_threshold=shard_threshold,
            pool_size=pool_size,
            timeout=timeout,
            replicas=replicas,
            ring_vnodes=ring_vnodes,
            hedge_threshold=hedge_threshold,
            failure_threshold=failure_threshold,
            rebalance=rebalance,
            rebalance_throttle=rebalance_throttle,
        )

    def __repr__(self) -> str:
        return f'{type(self).__name__}(node_id={self.node_id!r})'

    # -- primary operations --------------------------------------------- #
    def put(self, data: PutData) -> DIMKey:
        return self._client.put(data)

    def get(self, key: DIMKey) -> bytes | None:
        return self._client.get(key)

    def exists(self, key: DIMKey) -> bool:
        return self._client.exists(key)

    def evict(self, key: DIMKey) -> None:
        self._client.evict(key)

    # -- batch operations (one wire round trip per node) ------------------- #
    def put_batch(self, datas: Sequence[PutData]) -> list[DIMKey]:
        return self._client.put_batch(datas)

    def get_batch(self, keys: Iterable[DIMKey]) -> list[Any]:
        return self._client.get_batch(list(keys))

    def evict_batch(self, keys: Iterable[DIMKey]) -> None:
        self._client.evict_batch(list(keys))

    # -- deferred writes -------------------------------------------------- #
    def new_key(self) -> DIMKey:
        return DIMKey(
            object_id=new_object_id(),
            node_id=self.node_id,
            transport=self.transport,
            address=self._client.local_node.address,
        )

    def set(self, key: DIMKey, data: PutData) -> None:
        if key.node_id != self.node_id:
            raise ConnectorError(
                f'cannot fill deferred key for node {key.node_id!r} from '
                f'node {self.node_id!r}: DIM writes are node-local',
            )
        self._client.put_local(key.object_id, data)

    # -- cluster ----------------------------------------------------------- #
    def bind_metrics(self, metrics: Any) -> None:
        """Thread per-node health and cluster events into store metrics."""
        self._client.bind_metrics(metrics)

    def cluster_health(self) -> dict[str, Any]:
        """Membership, per-node health, and self-healing counters."""
        return self._client.cluster_health()

    def join_peer(self, peer: Any) -> None:
        """Add a node to the cluster; the rebalancer pulls its key share."""
        self._client.join_peer(peer)

    def leave_peer(self, node_id: str) -> None:
        """Voluntarily drain a node out of the cluster."""
        self._client.leave_peer(node_id)

    # -- configuration / lifecycle ---------------------------------------- #
    def config(self) -> dict[str, Any]:
        return {
            'node_id': self.node_id,
            'peers': [
                list(peer) if isinstance(peer, tuple) else peer
                for peer in self._client.peers
            ],
            'shard_threshold': self._client.shard_threshold,
            'pool_size': self._client.pool_size,
            'timeout': self._client.timeout,
            'replicas': self._client.replicas,
            'ring_vnodes': self._client.ring_vnodes,
            'hedge_threshold': self._client.hedge_threshold,
            'failure_threshold': self._client.failure_threshold,
            'rebalance': self._client.rebalancer is not None,
            'rebalance_throttle': self._client.rebalance_throttle,
        }

    @classmethod
    def from_url(cls, url: StoreURL | str) -> 'DIMConnectorBase':
        """Build from ``<scheme>://[node_id][/name][?peers=a,b&...]``.

        Recognized query parameters: ``peers`` (comma-separated node ids),
        ``shard_threshold`` (bytes), ``pool_size``, ``timeout`` (seconds),
        ``replicas``, ``ring_vnodes``, ``hedge_threshold`` (seconds),
        ``failure_threshold``, ``rebalance`` (bool), and
        ``rebalance_throttle`` (bytes/second).
        """
        url = StoreURL.parse(url)
        peers = url.pop_tags('peers')
        shard_threshold = url.pop_int('shard_threshold', DEFAULT_SHARD_THRESHOLD)
        pool_size = url.pop_int('pool_size', DEFAULT_POOL_SIZE)
        timeout = url.pop_float('timeout', DEFAULT_TIMEOUT)
        replicas = url.pop_int('replicas', 1)
        ring_vnodes = url.pop_int('ring_vnodes', 0)
        hedge_threshold = url.pop_float('hedge_threshold', DEFAULT_HEDGE_THRESHOLD)
        failure_threshold = url.pop_int('failure_threshold', DEFAULT_FAILURE_THRESHOLD)
        rebalance = url.pop_bool('rebalance', True)
        rebalance_throttle = url.pop_float('rebalance_throttle', None)
        assert shard_threshold is not None and pool_size is not None
        assert timeout is not None and replicas is not None
        assert ring_vnodes is not None and hedge_threshold is not None
        assert failure_threshold is not None
        return cls(
            node_id=url.netloc or None,
            peers=peers,
            shard_threshold=shard_threshold,
            pool_size=pool_size,
            timeout=timeout,
            replicas=replicas,
            ring_vnodes=ring_vnodes,
            hedge_threshold=hedge_threshold,
            failure_threshold=failure_threshold,
            rebalance=rebalance,
            rebalance_throttle=rebalance_throttle,
        )

    def close(self, clear: bool = False) -> None:
        if clear:
            self._client.local_node.close()
        self._client.close()
