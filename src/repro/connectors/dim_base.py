"""Shared implementation of the distributed in-memory connectors.

The Margo, UCX and ZMQ connectors of the paper differ only in the transport
library used to reach the per-node storage servers; the connector logic —
spawn a server on first use, address objects by ``(object_id, node)``, fetch
from whichever node holds the object — is identical.  This module hosts that
shared logic; the concrete connectors below it select the transport and
capability tags.
"""
from __future__ import annotations

import socket
from typing import Any

from repro.connectors.protocol import Connector
from repro.connectors.protocol import ConnectorCapabilities
from repro.connectors.protocol import PutData
from repro.connectors.protocol import new_object_id
from repro.connectors.registry import StoreURL
from repro.dim.client import DIMClient
from repro.dim.node import DIMKey
from repro.exceptions import ConnectorError

__all__ = ['DIMConnectorBase']


def _default_node_id() -> str:
    """Logical node identity: hostname (one storage server per node)."""
    return socket.gethostname()


class DIMConnectorBase(Connector):
    """Base class for distributed in-memory store connectors.

    Args:
        node_id: logical node name; defaults to the local hostname so that
            all connectors in one process share the node's storage server.
        transport: ``'memory'`` (RDMA stand-in) or ``'tcp'``.
    """

    connector_name = 'dim'
    transport = 'memory'
    supports_buffers = True
    capabilities = ConnectorCapabilities(
        storage='memory',
        intra_site=True,
        inter_site=False,
        persistence=False,
        tags=('distributed-memory',),
    )

    def __init__(self, node_id: str | None = None) -> None:
        self.node_id = node_id if node_id is not None else _default_node_id()
        self._client = DIMClient(self.node_id, self.transport)

    def __repr__(self) -> str:
        return f'{type(self).__name__}(node_id={self.node_id!r})'

    # -- primary operations --------------------------------------------- #
    def put(self, data: PutData) -> DIMKey:
        return self._client.put(data)

    def get(self, key: DIMKey) -> bytes | None:
        return self._client.get(key)

    def exists(self, key: DIMKey) -> bool:
        return self._client.exists(key)

    def evict(self, key: DIMKey) -> None:
        self._client.evict(key)

    # -- deferred writes -------------------------------------------------- #
    def new_key(self) -> DIMKey:
        return DIMKey(
            object_id=new_object_id(),
            node_id=self.node_id,
            transport=self.transport,
            address=self._client.local_node.address,
        )

    def set(self, key: DIMKey, data: PutData) -> None:
        if key.node_id != self.node_id:
            raise ConnectorError(
                f'cannot fill deferred key for node {key.node_id!r} from '
                f'node {self.node_id!r}: DIM writes are node-local',
            )
        self._client.local_node.put_local(key.object_id, data)

    # -- configuration / lifecycle ---------------------------------------- #
    def config(self) -> dict[str, Any]:
        return {'node_id': self.node_id}

    @classmethod
    def from_url(cls, url: StoreURL | str) -> 'DIMConnectorBase':
        """Build from ``<scheme>://[node_id][/name]`` (e.g. ``zmq://node-0``)."""
        url = StoreURL.parse(url)
        return cls(node_id=url.netloc or None)

    def close(self, clear: bool = False) -> None:
        if clear:
            self._client.local_node.close()
        self._client.close()
