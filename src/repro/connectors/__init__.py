"""Connector implementations (mediated communication channels).

Summary (mirrors Table 1 of the paper):

==============  =========  ==========  ==========  ===========
Connector       Storage    Intra-site  Inter-site  Persistence
==============  =========  ==========  ==========  ===========
LocalConnector  memory     --          --          --
FileConnector   disk       yes         --          yes
RedisConnector  hybrid     yes         --          yes
MargoConnector  memory     yes         --          --
UCXConnector    memory     yes         --          --
ZMQConnector    memory     yes         --          --
GlobusConnector disk       yes         yes         yes
EndpointConn.   hybrid     yes         yes         yes
MultiConnector  (varies)   (varies)    (varies)    (varies)
==============  =========  ==========  ==========  ===========
"""
from repro.connectors.protocol import Connector
from repro.connectors.protocol import ConnectorCapabilities
from repro.connectors.protocol import ConnectorKey
from repro.connectors.protocol import connector_from_path
from repro.connectors.protocol import connector_path
from repro.connectors.registry import StoreURL
from repro.connectors.registry import get_connector_class
from repro.connectors.registry import list_connectors
from repro.connectors.registry import register_connector
from repro.connectors.registry import unregister_connector
from repro.connectors.local import LocalConnector
from repro.connectors.file import FileConnector
from repro.connectors.redis import RedisConnector
from repro.connectors.margo import MargoConnector
from repro.connectors.ucx import UCXConnector
from repro.connectors.zmq import ZMQConnector
from repro.connectors.globus import GlobusConnector
from repro.connectors.endpoint import EndpointConnector
from repro.connectors.multi import MultiConnector
from repro.connectors.policy import Policy

__all__ = [
    'Connector',
    'ConnectorCapabilities',
    'ConnectorKey',
    'EndpointConnector',
    'FileConnector',
    'GlobusConnector',
    'LocalConnector',
    'MargoConnector',
    'MultiConnector',
    'Policy',
    'RedisConnector',
    'StoreURL',
    'UCXConnector',
    'ZMQConnector',
    'connector_from_path',
    'connector_path',
    'get_connector_class',
    'list_connectors',
    'register_connector',
    'unregister_connector',
]

#: Capability matrix used to regenerate Table 1 of the paper.
ALL_CONNECTOR_CLASSES = (
    LocalConnector,
    FileConnector,
    RedisConnector,
    MargoConnector,
    UCXConnector,
    ZMQConnector,
    GlobusConnector,
    EndpointConnector,
    MultiConnector,
)
