"""Event bus brokered by the SimKV event-loop server.

The SimKV server (:mod:`repro.kvserver`) doubles as the pub/sub broker for
multi-process streams: ``PUBLISH`` appends an event payload to a per-topic
ring buffer and fans it out to subscribed connections as unsolicited
``EVENT`` frames.  :class:`KVEventBus` is the client side:

* Publishing and catch-up fetches reuse the **pipelined** :class:`KVClient`
  (batched ``MPUBLISH`` frames, many publishes in flight on one socket).
* Each subscription holds a **dedicated connection**: the server pushes
  event batches to it, a reader thread queues them, and the consumer
  drains the queue.  The queue is bounded — a consumer that stops draining
  stalls its own TCP receive window, the server's outgoing queue for that
  connection hits the ``push_highwater`` mark and pushes stop, and the
  topic's ring retention bounds what the server keeps.  When the consumer
  resumes, the sequence gap is detected and a ``FETCH`` replays whatever
  the ring still holds (the rest is counted as *lost*, never silently
  skipped).

The bus registers under the ``kv`` and ``redis`` URL schemes, so
``event_bus_from_url('kv://127.0.0.1:7777?launch=1')`` selects it through
the same scheme-registry pattern stores use.
"""
from __future__ import annotations

import queue
import socket
import threading
import time
from typing import Any
from typing import Sequence

from repro.connectors.registry import StoreURL
from repro.exceptions import ConnectorError
from repro.exceptions import NodeUnavailableError
from repro.faults import injection
from repro.faults.retry import DEFAULT_RECONNECT_POLICY
from repro.faults.retry import RetryPolicy
from repro.kvserver.client import DEFAULT_POOL_SIZE
from repro.kvserver.client import DEFAULT_TIMEOUT
from repro.kvserver.client import KVClient
from repro.kvserver.protocol import EVENT_STATUS
from repro.kvserver.protocol import StreamDecoder
from repro.kvserver.protocol import send_message
from repro.kvserver.server import launch_server
from repro.stream.bus import register_event_bus

__all__ = ['KVEventBus', 'KVSubscription']

#: Bound on the push-batch queue of one subscription.  A full queue blocks
#: the reader thread, which stalls the TCP stream and engages the server's
#: highwater backpressure — bounded memory at every hop.
DEFAULT_MAX_QUEUED_BATCHES = 64

_SUBSCRIBE_REQUEST_ID = 0


class KVSubscription:
    """One consumer's subscription to a topic on a SimKV broker.

    The subscription owns a dedicated socket (server pushes are
    per-connection) plus a reader thread feeding a bounded queue.
    :meth:`next_batch` reconciles pushed batches with the expected sequence
    number: gaps (pushes dropped while this consumer lagged, or a
    reconnect) are backfilled from the topic ring via the bus's pipelined
    client, and events that aged out of retention are counted in
    :attr:`lost`.
    """

    def __init__(
        self,
        bus: 'KVEventBus',
        topic: str,
        from_seq: int | None,
        *,
        max_queued_batches: int = DEFAULT_MAX_QUEUED_BATCHES,
        poll_interval: float = 0.5,
        reconnect_policy: RetryPolicy | None = None,
    ) -> None:
        self._bus = bus
        self.topic = topic
        self._poll_interval = poll_interval
        self._reconnect_policy = reconnect_policy or DEFAULT_RECONNECT_POLICY
        self._queue: queue.Queue[list[tuple[int, Any]]] = queue.Queue(
            maxsize=max_queued_batches,
        )
        self._lost = 0
        self._closed = False
        self._dead = threading.Event()
        self._sock: socket.socket | None = None
        self._reader: threading.Thread | None = None
        self._expected = 0
        self._connect(from_seq)

    # -- wire ------------------------------------------------------------- #
    def _connect(self, from_seq: int | None) -> None:
        """Open the dedicated push connection and issue the SUBSCRIBE."""
        reply_box: queue.Queue[Any] = queue.Queue(maxsize=1)
        try:
            injection.on_connect(self._bus.host, self._bus.port)
            sock = socket.create_connection(
                (self._bus.host, self._bus.port), timeout=self._bus.timeout,
            )
        except OSError as e:
            # Typed as node-unavailable so failover layers know the broker
            # itself is gone (vs. a request-level failure).
            raise NodeUnavailableError(
                f'cannot connect to SimKV broker at '
                f'{self._bus.host}:{self._bus.port}: {e}',
            ) from e
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        sock.settimeout(None)
        self._sock = sock
        self._dead.clear()
        send_message(
            sock,
            (_SUBSCRIBE_REQUEST_ID, 'SUBSCRIBE', self.topic, {'from_seq': from_seq}),
        )
        self._reader = threading.Thread(
            target=self._read_loop,
            args=(sock, reply_box),
            name='simkv-subscription',
            daemon=True,
        )
        self._reader.start()
        try:
            reply = reply_box.get(timeout=self._bus.timeout)
        except queue.Empty:
            self.close()
            raise ConnectorError(
                f'SUBSCRIBE to topic {self.topic!r} timed out',
            ) from None
        if isinstance(reply, Exception):
            self.close()
            raise ConnectorError(f'SUBSCRIBE failed: {reply}') from reply
        reply_lost = int(reply.get('lost', 0))
        self._lost += reply_lost
        # Replay starts at the oldest retained event past from_seq; with no
        # from_seq the cursor starts at the broker's current head.
        self._expected = (
            int(from_seq) + reply_lost
            if from_seq is not None
            else int(reply['next_seq'])
        )

    def _read_loop(self, sock: socket.socket, reply_box: queue.Queue[Any]) -> None:
        """Reader thread: queue pushed event batches, hand over the reply."""
        decoder = StreamDecoder()
        pending_events: list[list[tuple[int, Any]]] = []
        replied = False
        while True:
            try:
                message = decoder.read_message(sock)
            # repro: ignore[RP004] - not swallowed: message=None signals
            # death below (_dead is set, waiters get ConnectionError)
            except Exception:  # noqa: BLE001 - any failure ends the stream
                message = None
            if message is None:
                self._dead.set()
                if not replied:
                    reply_box.put(ConnectionError('broker closed the connection'))
                # Wake a blocked next_batch so it notices the death.
                try:
                    self._queue.put_nowait([])
                except queue.Full:
                    pass
                return
            try:
                request_id, status, payload = message
            except (TypeError, ValueError):
                continue
            if status == EVENT_STATUS:
                _topic, events = payload
                batch = [(int(seq), data) for seq, data in events]
                if not replied:
                    # Backlog frames may arrive before the SUBSCRIBE reply;
                    # hold them so the reply is processed first.
                    pending_events.append(batch)
                else:
                    self._queue.put(batch)
            elif request_id == _SUBSCRIBE_REQUEST_ID and not replied:
                replied = True
                if status != 'ok':
                    reply_box.put(ConnectorError(str(payload)))
                    return
                reply_box.put(payload)
                for batch in pending_events:
                    self._queue.put(batch)
                pending_events.clear()

    # -- consumption ------------------------------------------------------- #
    @property
    def lost(self) -> int:
        """Events that aged out of retention before this subscriber saw them."""
        return self._lost

    @property
    def position(self) -> int:
        """Sequence number of the next event this subscriber will deliver."""
        return self._expected

    def _account_lost(self, fetched: dict[str, Any], cap: int | None = None) -> None:
        """Count a fetch's lost events once, advancing the cursor past them.

        The cursor must move to the oldest retained event: leaving it
        inside the lost region would re-count the same loss on the next
        fetch.  ``cap`` bounds the accounting to a known gap — events past
        the gap may still be in flight as pushes, so only a later fetch
        may declare them lost.
        """
        lost = int(fetched.get('lost', 0))
        if cap is not None:
            lost = min(lost, cap)
        if lost > 0:
            self._lost += lost
            self._expected += lost

    def _backfill(self, up_to: int) -> list[tuple[int, Any]]:
        """Fetch ``[expected, up_to)`` from the topic ring after a push gap."""
        recovered: list[tuple[int, Any]] = []
        gap = up_to - self._expected
        fetched = self._bus.client.fetch_events(
            self.topic, since=self._expected, max_events=gap,
        )
        self._account_lost(fetched, cap=gap)
        for seq, data in fetched.get('events', []):
            seq = int(seq)
            if self._expected <= seq < up_to:
                recovered.append((seq, data))
                self._expected = seq + 1
        # Whatever the ring no longer held below up_to is lost for good.
        if self._expected < up_to:
            self._lost += up_to - self._expected
            self._expected = up_to
        return recovered

    def _poll_ring(self) -> list[tuple[int, Any]]:
        """Fetch events past the cursor straight from the topic ring.

        The liveness net under server-side push dropping: when this
        consumer lagged past the highwater mark, the events it missed sit
        in the ring but no push will ever re-announce them unless someone
        publishes again — so an idle wait periodically asks the ring
        directly.
        """
        fetched = self._bus.client.fetch_events(self.topic, since=self._expected)
        self._account_lost(fetched)
        out: list[tuple[int, Any]] = []
        for seq, data in fetched.get('events', []):
            seq = int(seq)
            if seq >= self._expected:
                out.append((seq, data))
                self._expected = seq + 1
        return out

    def next_batch(self, timeout: float | None = None) -> list[tuple[int, Any]]:
        """Return the next in-order events (empty list on timeout).

        Pushed batches are reconciled against the expected sequence number:
        duplicates (push/fetch overlap) are dropped, and gaps are
        backfilled from the server's ring buffer — the caller sees each
        surviving event exactly once, in order.  When pushes go quiet for
        ``poll_interval`` the ring is polled directly, so events whose
        pushes were dropped under backpressure are still delivered.
        """
        deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        while not self._closed:
            wait = self._poll_interval
            if deadline is not None:
                wait = min(wait, max(0.0, deadline - time.monotonic()))
            try:
                raw = self._queue.get(timeout=wait)
            except queue.Empty:
                raw = None
            if raw is None:
                if self._dead.is_set():
                    self._reconnect()
                polled = self._poll_ring()
                if polled:
                    return polled
                if deadline is not None and time.monotonic() >= deadline:
                    return []
                continue
            # Drain whatever else is already queued — batching is free here.
            while True:
                try:
                    raw.extend(self._queue.get_nowait())
                except queue.Empty:
                    break
            out: list[tuple[int, Any]] = []
            for seq, data in raw:
                if seq < self._expected:
                    continue
                if seq > self._expected:
                    out.extend(self._backfill(seq))
                    if seq < self._expected:  # aged out under the backfill
                        continue
                out.append((seq, data))
                self._expected = seq + 1
            if out:
                return out
            if self._dead.is_set():
                self._reconnect()
            if deadline is not None and time.monotonic() >= deadline:
                return []
        return []

    def _reconnect(self) -> None:
        """Re-establish a died push connection, resuming from the cursor.

        Retries with the subscription's jittered-backoff policy: a broker
        that is restarting (same address, new process) answers within a
        few attempts and the cursor-driven SUBSCRIBE backfills the gap
        from its ring.  Only after the policy is exhausted does the
        failure propagate — at which point a replication-aware wrapper
        (:class:`~repro.stream.failover.FailoverSubscription`) fails over
        to another broker instead.
        """
        if self._closed:
            return
        self._teardown_socket()
        last: Exception | None = None
        for _attempt in self._reconnect_policy.attempts():
            if self._closed:
                return
            try:
                self._connect(self._expected)
            except ConnectorError as e:
                last = e
                continue
            return
        if last is not None:
            raise last

    # -- lifecycle --------------------------------------------------------- #
    def _teardown_socket(self) -> None:
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:  # pragma: no cover - platform dependent
                pass
        reader, self._reader = self._reader, None
        if reader is not None and reader is not threading.current_thread():
            reader.join(timeout=2.0)

    def close(self) -> None:
        """Close the push connection (the server drops the subscription)."""
        self._closed = True
        self._teardown_socket()

    def __enter__(self) -> 'KVSubscription':
        return self

    def __exit__(self, exc_type: Any, exc_value: Any, traceback: Any) -> None:
        self.close()


class KVEventBus:
    """Event bus whose topics live on a SimKV event-loop server.

    Args:
        host: broker host name.
        port: broker port.  With ``launch=True`` and ``port=0`` a fresh
            in-process server is started (ephemeral port recorded so
            ``config()`` round-trips point at the same broker).
        launch: start an in-process server if one is not already running.
        retention: per-topic ring-buffer bound applied (via ``TCONFIG``)
            to topics first touched through this handle; ``None`` keeps
            the server default.
        timeout: per-request inactivity bound, as for :class:`KVClient`.
        pool_size: pooled connections of the publish/fetch client.
        max_queued_batches: bound on each subscription's local push queue.
        poll_interval: seconds an idle subscription waits between direct
            ring polls (the liveness net when its pushes were dropped
            under backpressure); lower it for latency-sensitive consumers.
        reconnect_policy: jittered-backoff schedule subscriptions use to
            re-establish a died push connection (default:
            :data:`~repro.faults.retry.DEFAULT_RECONNECT_POLICY`).
    """

    scheme = 'kv'

    def __init__(
        self,
        host: str = '127.0.0.1',
        port: int = 0,
        *,
        launch: bool = False,
        retention: int | None = None,
        timeout: float = DEFAULT_TIMEOUT,
        pool_size: int = DEFAULT_POOL_SIZE,
        max_queued_batches: int = DEFAULT_MAX_QUEUED_BATCHES,
        poll_interval: float = 0.5,
        reconnect_policy: RetryPolicy | None = None,
    ) -> None:
        if launch:
            server = launch_server(host, port)
            assert server.port is not None
            host, port = server.host, server.port
        self.host = host
        self.port = port
        self.retention = retention
        self.timeout = timeout
        self.pool_size = pool_size
        self.max_queued_batches = max_queued_batches
        self.poll_interval = poll_interval
        self.reconnect_policy = reconnect_policy or DEFAULT_RECONNECT_POLICY
        self.client = KVClient(host, port, timeout=timeout, pool_size=pool_size)
        self._configured: set[str] = set()
        self._configure_lock = threading.Lock()

    def __repr__(self) -> str:
        return f'KVEventBus(host={self.host!r}, port={self.port})'

    def _ensure_topic(self, topic: str) -> None:
        """Apply this handle's retention to ``topic`` exactly once."""
        if self.retention is None or topic in self._configured:
            return
        with self._configure_lock:
            if topic in self._configured:
                return
            self.client.topic_config(topic, retention=self.retention)
            self._configured.add(topic)

    # -- EventBus protocol ------------------------------------------------- #
    def publish(self, topic: str, payload: Any) -> int:
        """Publish one payload on ``topic``; returns its sequence number."""
        self._ensure_topic(topic)
        return self.client.publish(topic, payload)

    def publish_batch(self, topic: str, payloads: Sequence[Any]) -> list[int]:
        """Publish several payloads on ``topic`` in one wire round trip."""
        self._ensure_topic(topic)
        return self.client.publish_batch(topic, payloads)

    def subscribe(self, topic: str, *, from_seq: int | None = None) -> KVSubscription:
        """Open a dedicated push subscription to ``topic``.

        ``from_seq`` replays the retained backlog from that sequence
        number; events older than the ring are counted on the
        subscription's ``lost``.
        """
        self._ensure_topic(topic)
        return KVSubscription(
            self,
            topic,
            from_seq,
            max_queued_batches=self.max_queued_batches,
            poll_interval=self.poll_interval,
            reconnect_policy=self.reconnect_policy,
        )

    def topic_stats(self, topic: str) -> dict[str, Any] | None:
        """Return broker-side statistics for ``topic``."""
        return self.client.topic_stats(topic)

    def configure_topic(self, topic: str, *, retention: int) -> None:
        """Set ``topic``'s ring retention on the broker."""
        self.client.topic_config(topic, retention=retention)
        self._configured.add(topic)

    def config(self) -> dict[str, Any]:
        """Return a picklable dict re-creating a handle to the same broker."""
        return {
            'scheme': self.scheme,
            'host': self.host,
            'port': self.port,
            'retention': self.retention,
            'timeout': self.timeout,
            'pool_size': self.pool_size,
            'max_queued_batches': self.max_queued_batches,
            'poll_interval': self.poll_interval,
        }

    @classmethod
    def from_config(cls, config: dict[str, Any]) -> 'KVEventBus':
        """Rebuild a bus handle from a :meth:`config` dictionary."""
        return cls(**config)

    @classmethod
    def from_url(cls, url: 'StoreURL | str') -> 'KVEventBus':
        """Build from ``kv://host:port[?launch=1&retention=N&timeout=S]``."""
        url = StoreURL.parse(url)
        timeout = url.pop_float('timeout', DEFAULT_TIMEOUT)
        pool_size = url.pop_int('pool_size', DEFAULT_POOL_SIZE)
        poll_interval = url.pop_float('poll_interval', 0.5)
        assert timeout is not None and pool_size is not None
        assert poll_interval is not None
        return cls(
            host=url.host or '127.0.0.1',
            port=url.port or 0,
            launch=url.pop_bool('launch', False),
            retention=url.pop_int('retention'),
            timeout=timeout,
            pool_size=pool_size,
            poll_interval=poll_interval,
        )

    def close(self) -> None:
        """Close the publish/fetch client (subscriptions close themselves)."""
        self.client.close()

    def __enter__(self) -> 'KVEventBus':
        return self

    def __exit__(self, exc_type: Any, exc_value: Any, traceback: Any) -> None:
        self.close()


register_event_bus('kv', KVEventBus)
register_event_bus('redis', KVEventBus)
