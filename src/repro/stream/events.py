"""Stream event records published on a topic.

A :class:`StreamEvent` is the tiny control-plane message a
:class:`~repro.stream.StreamProducer` publishes for every item: it carries
the connector *key* of the item's bulk data (stored out-of-band through the
producer's :class:`~repro.store.Store`) plus user metadata — never the data
itself.  Consumers resolve the bulk bytes directly from the store, so the
event transport only ever moves a few hundred bytes per item no matter how
large the items are (the streaming extension of the paper's
control-flow/data-flow decoupling).

Two special forms exist:

* *inline* events embed a serialized payload in the event itself
  (``payload is not None``).  This is the naive "data rides the message
  bus" design streaming proxies replace; it is kept as a first-class mode
  so benchmarks and small-item streams can use the same API.
* *end* events (``end=True``) mark end-of-stream; a consumer iterating the
  topic stops when it sees one.

Events are pickled for the wire (both event transports treat payloads as
opaque bytes), so keys may be any picklable connector key type.
"""
from __future__ import annotations

import pickle
from dataclasses import dataclass
from dataclasses import field
from typing import Any

__all__ = ['StreamEvent']


@dataclass
class StreamEvent:
    """One item announcement on a stream topic.

    Attributes:
        key: connector key of the item's bulk data (``None`` for inline and
            end-of-stream events).
        metadata: arbitrary picklable, user-supplied metadata.
        nbytes: serialized size of the item's bulk data in bytes.
        payload: serialized item embedded in the event itself (inline
            mode); ``None`` for proxied items.
        end: end-of-stream marker; consumers stop iterating when they see
            one.
        seq: topic sequence number, assigned by the event bus on delivery
            (``-1`` until then).
    """

    key: Any = None
    metadata: dict[str, Any] = field(default_factory=dict)
    nbytes: int = 0
    payload: bytes | None = None
    end: bool = False
    seq: int = -1

    @property
    def inline(self) -> bool:
        """Whether the item's data is embedded in the event itself."""
        return self.payload is not None

    def encode(self) -> bytes:
        """Serialize this event for publication on an event bus."""
        return pickle.dumps(
            (self.key, self.metadata, self.nbytes, self.payload, self.end),
            protocol=pickle.HIGHEST_PROTOCOL,
        )

    @classmethod
    def decode(cls, data: 'bytes | bytearray | memoryview', seq: int = -1) -> 'StreamEvent':
        """Rebuild an event from :meth:`encode` output (``seq`` from the bus)."""
        key, metadata, nbytes, payload, end = pickle.loads(bytes(data))
        return cls(
            key=key,
            metadata=metadata,
            nbytes=nbytes,
            payload=payload,
            end=end,
            seq=seq,
        )
