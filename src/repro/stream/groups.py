"""Consumer groups with at-least-once delivery over partitioned topics.

The PR 5 bus serves one broker and independent subscribers: every
subscriber sees every event, and a consumer that crashes with delivered-
but-unprocessed events silently strands them (and their backing proxy
keys).  This module turns the bus into a fleet-scale delivery substrate:

* **Partitioned topics** — a topic is split into N partition topics
  (``{topic}.p{i}``) spread across any number of brokers by a
  :class:`~repro.cluster.ring.HashRing` over stable broker ids
  (:func:`~repro.stream.bus.broker_id`).  Placement is deterministic and
  coordinator-free: every producer and consumer handed the same broker
  URLs computes the same partition -> broker map, the same ``blake2b``
  scheme :mod:`repro.cluster` uses for key placement.
* **Consumer groups** — members of a group split the partitions among
  themselves (round-robin over the sorted member ids, recomputed locally
  by every member from the membership view, so assignment needs no
  central assignor).  A :class:`GroupCoordinator` on the group's
  *designated broker* (``ring.primary`` over the group name) tracks
  membership with leased heartbeats, per-partition **committed offsets**
  (advanced only on :meth:`GroupConsumer.ack`) and delivered
  **watermarks** (the furthest position any member reported).
* **At-least-once redelivery** — when a member misses its heartbeats the
  broker expires it and bumps the group generation; survivors detect the
  change on their next heartbeat, claim the dead member's partitions, and
  resume from the *committed* offset — everything the dead member
  delivered but never acked is replayed from the topic ring's retention.
  Events inside the redelivery window whose keys were already evicted
  (the dead member crashed mid-ack) are recognized and skipped, so a
  crash at any instant neither strands keys nor double-processes acked
  work.  Per-group ``delivered`` / ``redelivered`` / ``lost`` /
  ``deduplicated`` accounting is kept on the consumer and surfaced
  through store metrics (``stream.group.*``).

Delivery guarantees, by construction:

========================  ==========================================
mode                      guarantee
========================  ==========================================
inline events             at-most-once (data dies with the event)
plain consumer + ``ack``  at-most-once per consumer (no redelivery)
``group=...`` + ``ack``   at-least-once across the group
========================  ==========================================
"""
from __future__ import annotations

import hashlib
import threading
import time
from typing import Any
from typing import Iterator
from typing import Sequence
from typing import TYPE_CHECKING

from repro.cluster.membership import ClusterMembership
from repro.cluster.membership import DEFAULT_FAILURE_THRESHOLD
from repro.cluster.ring import HashRing
from repro.exceptions import ConnectorError
from repro.exceptions import GroupMembershipError
from repro.exceptions import NodeUnavailableError
from repro.exceptions import StoreError
from repro.exceptions import StreamGroupError
from repro.exceptions import ProxyResolveError
from repro.proxy.proxy import Proxy
from repro.proxy.resolve import resolve
from repro.proxy.resolve import resolve_async
from repro.faults.retry import DEFAULT_RECONNECT_POLICY
from repro.store.factory import StoreFactory
from repro.stream.bus import EventBus
from repro.stream.bus import broker_id
from repro.stream.bus import bus_from_config
from repro.stream.bus import event_bus_from_url
from repro.stream.failover import FailoverSubscription

if TYPE_CHECKING:  # pragma: no cover - import cycle avoidance
    from repro.store.store import Store
    from repro.stream.events import StreamEvent

__all__ = [
    'DEFAULT_SESSION_TIMEOUT',
    'GroupConsumer',
    'GroupCoordinator',
    'PartitionRouter',
    'assign_partitions',
    'partition_for',
    'partition_topics',
]

#: Default seconds without a heartbeat before a member is expired.
DEFAULT_SESSION_TIMEOUT = 10.0

#: Fraction of the session timeout between heartbeats (3 beats per lease).
_HEARTBEAT_FRACTION = 3.0

#: Seconds one poll pass spreads across the assigned subscriptions.
_POLL_SLICE = 0.1


def partition_topics(topic: str, partitions: int) -> list[str]:
    """The concrete per-partition topic names of ``topic``.

    One partition keeps the plain topic name, so ``partitions=1`` is wire-
    compatible with unpartitioned producers and subscribers; more yield
    ``{topic}.p0 .. {topic}.p{N-1}``.
    """
    if partitions < 1:
        raise ValueError('partitions must be at least 1')
    if partitions == 1:
        return [topic]
    return [f'{topic}.p{i}' for i in range(partitions)]


def partition_for(partition_key: str, partitions: int) -> int:
    """Deterministic partition index for ``partition_key``.

    ``blake2b`` over the key string (the :mod:`repro.cluster` scheme, never
    Python's randomized ``hash()``), so every producer process sends the
    same key to the same partition — the property that makes per-key
    ordering survive multi-producer deployments.
    """
    if partitions < 1:
        raise ValueError('partitions must be at least 1')
    digest = hashlib.blake2b(
        str(partition_key).encode(), digest_size=8,
    ).digest()
    return int.from_bytes(digest, 'big') % partitions


def assign_partitions(
    members: Sequence[str],
    topics: Sequence[str],
) -> dict[str, list[str]]:
    """Round-robin partition topics over the sorted member ids.

    Pure and deterministic: every member computes the same assignment from
    the same membership view, so no central assignor is needed — the
    coordinator only has to version the view (the group generation).
    """
    ordered = sorted(members)
    assignment: dict[str, list[str]] = {member: [] for member in ordered}
    for index, topic in enumerate(topics):
        if ordered:
            assignment[ordered[index % len(ordered)]].append(topic)
    return assignment


class PartitionRouter:
    """Deterministic partition-topic -> broker placement for one topic.

    Args:
        topic: the logical topic name.
        partitions: number of partitions it is split into.
        brokers: the broker fleet — event-bus instances, bus URLs, or a
            mixture.  Buses created here from URLs are owned by the router
            (closed by :meth:`close`); caller-passed instances are shared.
        replicas: how many ring-successor brokers hold each partition
            topic's retention ring.  With ``replicas > 1`` (and more than
            one broker) the router mirrors every publish to the successor
            replicas via ``REPL_PUBLISH``, tracks broker health in a
            :class:`~repro.cluster.membership.ClusterMembership`, and
            fails publishes and subscriptions over to the next live owner
            when a broker dies.
        failure_threshold: consecutive unavailable-failures before a
            broker is declared dead by this router's failure detector.

    Placement hashes each partition topic onto a consistent-hash ring over
    the brokers' stable ids, so adding a broker moves ~``1/N`` of the
    partitions and every process computes the same map without talking to
    anyone.  The ring stays *static* over the full fleet even when a
    broker dies: failover walks the partition's fixed owner list to the
    first live broker, so independent processes — each with their own
    failure detector — converge on the same replica without coordination.
    """

    def __init__(
        self,
        topic: str,
        partitions: int,
        brokers: 'Sequence[EventBus | str] | EventBus | str',
        *,
        replicas: int = 1,
        failure_threshold: int = DEFAULT_FAILURE_THRESHOLD,
    ) -> None:
        if isinstance(brokers, (str, bytes)) or not isinstance(brokers, Sequence):
            brokers = [brokers]  # type: ignore[list-item]
        if not brokers:
            raise ValueError('at least one broker is required')
        if replicas < 1:
            raise ValueError('replicas must be at least 1')
        self.topic = topic
        self.partitions = partitions
        self._owned: list[EventBus] = []
        resolved: list[EventBus] = []
        for broker in brokers:
            if isinstance(broker, str):
                bus = event_bus_from_url(broker)
                self._owned.append(bus)
            else:
                bus = broker
            resolved.append(bus)
        self._by_id = {broker_id(bus): bus for bus in resolved}
        if len(self._by_id) != len(resolved):
            raise ValueError('brokers must have distinct identities')
        self.ring = HashRing(self._by_id)
        self.topics = partition_topics(topic, partitions)
        self.replicas = min(replicas, len(self._by_id))
        #: Failure detector over the broker fleet — present only when
        #: replication is on (with one owner per partition there is no
        #: live replica to fail over to, so detection buys nothing).
        self.membership: ClusterMembership | None = (
            ClusterMembership(
                list(self._by_id), failure_threshold=failure_threshold,
            )
            if self.replicas > 1
            else None
        )

    def __repr__(self) -> str:
        return (
            f'PartitionRouter(topic={self.topic!r}, '
            f'partitions={self.partitions}, brokers={len(self._by_id)})'
        )

    @property
    def brokers(self) -> list[EventBus]:
        """Every broker bus handle, in ring-id order."""
        return [self._by_id[node] for node in self.ring.nodes]

    # -- placement and health ------------------------------------------------ #
    def _alive(self, node: str) -> bool:
        """Whether ``node`` is considered usable by the failure detector."""
        if self.membership is None:
            return True
        return self.membership.state_of(node) != 'dead'

    def owners(self, key: str) -> list[str]:
        """The fixed ring-owner node ids for ``key`` (primary first)."""
        return list(self.ring.owners(key, self.replicas))

    def ordered_owners(self, key: str) -> list[str]:
        """Owner node ids for ``key``, live brokers first.

        The order is the failover walk: the ring primary when healthy,
        otherwise the first live successor; dead owners trail the list so
        a broker that comes back is still retried last-resort when every
        replica is down.
        """
        owners = self.owners(key)
        if self.membership is None:
            return owners
        alive = [n for n in owners if self._alive(n)]
        dead = [n for n in owners if not self._alive(n)]
        return alive + dead

    def bus_of(self, node: str) -> EventBus:
        """The bus handle for ring node ``node``."""
        return self._by_id[node]

    def client_of(self, node: str) -> Any:
        """The node's SimKV request client, or ``None`` (local transport)."""
        return getattr(self._by_id[node], 'client', None)

    def record(
        self,
        node: str,
        *,
        ok: bool,
        unavailable: bool = False,
        error: Exception | None = None,
    ) -> None:
        """Fold one broker-operation outcome into the failure detector.

        A streak of ``unavailable`` failures (``failure_threshold``
        consecutive) marks the broker dead, after which
        :meth:`ordered_owners` routes around it.  A no-op when
        replication (and therefore the detector) is off.
        """
        if self.membership is not None:
            self.membership.record(
                node, ok=ok, unavailable=unavailable, error=error,
            )

    def bus_for(self, partition_topic: str) -> EventBus:
        """The live broker bus that currently hosts ``partition_topic``."""
        return self._by_id[self.ordered_owners(partition_topic)[0]]

    def bus_for_partition(self, partition: int) -> EventBus:
        """The broker bus that hosts partition index ``partition``."""
        return self.bus_for(self.topics[partition])

    def designated(self, label: str) -> EventBus:
        """The live broker currently designated to coordinate ``label``."""
        return self._by_id[self.coordinator_owners(label)[0]]

    def coordinator_owners(self, label: str) -> list[str]:
        """Owner node ids for coordinating ``label``, live brokers first."""
        return self.ordered_owners(f'coordinator:{label}')

    # -- replicated publish -------------------------------------------------- #
    def publish(self, partition_topic: str, payload: Any) -> int:
        """Publish one payload with failover and replication; returns its seq."""
        return self.publish_batch(partition_topic, [payload])[0]

    def publish_batch(self, partition_topic: str, payloads: Sequence[Any]) -> list[int]:
        """Publish ``payloads`` to the partition's live primary, then mirror.

        The first live ring owner assigns the sequence numbers; the events
        are then mirrored — with those explicit numbers — onto the other
        live owners via ``REPL_PUBLISH`` *before returning*, so a single
        broker death after the publish cannot lose an event the caller was
        told succeeded.  Owner walk and retries use the shared jittered
        backoff policy; a replica mirror failure is recorded against that
        replica but does not fail the publish (the data is durable on the
        primary — the fleet is merely under-replicated until it recovers).
        """
        last: Exception | None = None
        for _attempt in DEFAULT_RECONNECT_POLICY.attempts():
            owners = self.ordered_owners(partition_topic)
            for node in owners:
                bus = self._by_id[node]
                try:
                    seqs = list(bus.publish_batch(partition_topic, list(payloads)))
                except NodeUnavailableError as e:
                    self.record(node, ok=False, unavailable=True, error=e)
                    last = e
                    continue
                self.record(node, ok=True)
                self._replicate(
                    partition_topic, list(zip(seqs, payloads)), primary=node,
                )
                return seqs
        raise last if last is not None else NodeUnavailableError(
            f'no broker reachable for topic {partition_topic!r}',
        )

    def _replicate(
        self,
        partition_topic: str,
        entries: list[tuple[int, Any]],
        *,
        primary: str,
    ) -> None:
        """Mirror ``(seq, payload)`` events onto the non-primary live owners."""
        if self.replicas < 2 or not entries:
            return
        for node in self.owners(partition_topic):
            if node == primary or not self._alive(node):
                continue
            repl = getattr(self.client_of(node), 'repl_publish', None)
            if repl is None:
                continue  # transport without replication support
            try:
                repl(partition_topic, entries)
            except NodeUnavailableError as e:
                self.record(node, ok=False, unavailable=True, error=e)
            except ConnectorError as e:
                self.record(node, ok=False, error=e)
            else:
                self.record(node, ok=True)

    def subscribe(self, partition_topic: str, *, from_seq: int | None = None) -> Any:
        """Subscribe to ``partition_topic`` on its current live owner.

        With replication on, returns a
        :class:`~repro.stream.failover.FailoverSubscription` that rides
        out broker death by re-subscribing on the next live owner from
        its cursor; otherwise a plain transport subscription.
        """
        if self.replicas > 1:
            return FailoverSubscription(self, partition_topic, from_seq=from_seq)
        return self.bus_for(partition_topic).subscribe(
            partition_topic, from_seq=from_seq,
        )

    def config(self) -> dict[str, Any]:
        """Return a picklable dict re-creating an equivalent router."""
        return {
            'topic': self.topic,
            'partitions': self.partitions,
            'brokers': [bus.config() for bus in self.brokers],
            'replicas': self.replicas,
        }

    @classmethod
    def from_config(cls, config: dict[str, Any]) -> 'PartitionRouter':
        """Rebuild a router from a :meth:`config` dictionary."""
        router = cls(
            config['topic'],
            config['partitions'],
            [bus_from_config(c) for c in config['brokers']],
            replicas=int(config.get('replicas', 1)),
        )
        # Buses rebuilt from configs are owned by this router.
        router._owned = router.brokers
        return router

    def close(self) -> None:
        """Close the buses this router created from URLs or configs."""
        for bus in self._owned:
            bus.close()
        self._owned = []


# --------------------------------------------------------------------------- #
# Group state backends
# --------------------------------------------------------------------------- #
class _LocalGroupState:
    """In-process group state mirroring the broker-side ``_Group`` record."""

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.generation = 0
        self.members: dict[str, tuple[float, float]] = {}
        self.committed: dict[str, int] = {}
        self.watermarks: dict[str, int] = {}
        self.ends: dict[str, tuple[int, str]] = {}

    def sweep_locked(self, now: float) -> None:
        dead = [m for m, (deadline, _) in self.members.items() if now > deadline]
        for member in dead:
            del self.members[member]
        if dead:
            self.generation += 1

    def advance_locked(self, positions: dict[str, int] | None) -> None:
        for topic, position in (positions or {}).items():
            if int(position) > self.watermarks.get(topic, 0):
                self.watermarks[topic] = int(position)

    def record_ends_locked(self, member: str, ends: dict[str, int] | None) -> None:
        for topic, end_seq in (ends or {}).items():
            self.ends[topic] = (int(end_seq), member)

    def view_locked(self) -> dict[str, Any]:
        return {'generation': self.generation, 'members': sorted(self.members)}


#: Process-global group states of the in-process transport, keyed by
#: (local bus id, group name) — mirrors the shared-topic registry of
#: :class:`~repro.stream.bus.LocalEventBus`.
_LOCAL_GROUPS: dict[tuple[str, str], _LocalGroupState] = {}
_LOCAL_GROUPS_LOCK = threading.Lock()


class _LocalBackend:
    """Group-state backend over the in-process transport."""

    def __init__(self, namespace: str, group: str) -> None:
        with _LOCAL_GROUPS_LOCK:
            self._state = _LOCAL_GROUPS.setdefault(
                (namespace, group), _LocalGroupState(),
            )

    def join(self, member: str, session_timeout: float) -> dict[str, Any]:
        state = self._state
        now = time.monotonic()
        with state.lock:
            state.sweep_locked(now)
            if member not in state.members:
                state.generation += 1
            state.members[member] = (now + session_timeout, session_timeout)
            return state.view_locked()

    def heartbeat(
        self,
        member: str,
        positions: dict[str, int],
        ends: dict[str, int] | None = None,
    ) -> dict[str, Any]:
        state = self._state
        now = time.monotonic()
        with state.lock:
            state.sweep_locked(now)
            if member not in state.members:
                raise GroupMembershipError(
                    f'member {member!r} expired from the group',
                )
            deadline, timeout = state.members[member]
            state.members[member] = (now + timeout, timeout)
            state.advance_locked(positions)
            state.record_ends_locked(member, ends)
            return state.view_locked()

    def leave(self, member: str, positions: dict[str, int]) -> None:
        state = self._state
        with state.lock:
            state.sweep_locked(time.monotonic())
            if state.members.pop(member, None) is not None:
                state.generation += 1
            state.advance_locked(positions)

    def commit(
        self,
        member: str,
        offsets: dict[str, int],
        positions: dict[str, int],
        ends: dict[str, int] | None = None,
    ) -> None:
        state = self._state
        now = time.monotonic()
        with state.lock:
            state.sweep_locked(now)
            for topic, offset in offsets.items():
                if int(offset) > state.committed.get(topic, 0):
                    state.committed[topic] = int(offset)
            state.advance_locked(positions)
            state.record_ends_locked(member, ends)
            if member in state.members:
                deadline, timeout = state.members[member]
                state.members[member] = (now + timeout, timeout)

    def fetch(self, topics: Sequence[str]) -> dict[str, dict[str, int]]:
        state = self._state
        with state.lock:
            fetched = {}
            for topic in topics:
                end = state.ends.get(topic)
                fetched[topic] = {
                    'committed': state.committed.get(topic, 0),
                    'watermark': state.watermarks.get(topic, 0),
                    'end': None if end is None else end[0],
                    'end_member': None if end is None else end[1],
                }
            return fetched

    def stats(self) -> dict[str, Any]:
        state = self._state
        with state.lock:
            state.sweep_locked(time.monotonic())
            return {
                **state.view_locked(),
                'committed': dict(state.committed),
                'watermarks': dict(state.watermarks),
                'ends': {t: e[0] for t, e in state.ends.items()},
            }


class _KVBackend:
    """Group-state backend over a designated SimKV broker."""

    def __init__(self, client: Any, group: str) -> None:
        self._client = client
        self._group = group

    def join(self, member: str, session_timeout: float) -> dict[str, Any]:
        return self._client.group_join(
            self._group, member, session_timeout=session_timeout,
        )

    def heartbeat(
        self,
        member: str,
        positions: dict[str, int],
        ends: dict[str, int] | None = None,
    ) -> dict[str, Any]:
        try:
            return self._client.group_heartbeat(
                self._group, member, positions, ends,
            )
        except ConnectorError as e:
            if isinstance(e, NodeUnavailableError):
                raise
            if 'unknown member' in str(e):
                raise GroupMembershipError(
                    f'member {member!r} expired from the group',
                ) from e
            raise

    def leave(self, member: str, positions: dict[str, int]) -> None:
        self._client.group_leave(self._group, member, positions)

    def commit(
        self,
        member: str,
        offsets: dict[str, int],
        positions: dict[str, int],
        ends: dict[str, int] | None = None,
    ) -> None:
        self._client.offset_commit(
            self._group, offsets,
            member=member, positions=positions, ends=ends,
        )

    def fetch(self, topics: Sequence[str]) -> dict[str, dict[str, int]]:
        return self._client.offset_fetch(self._group, topics)

    def stats(self) -> dict[str, Any]:
        return self._client.group_stats(self._group)


class _ReplicatedKVBackend:
    """Group-state backend over a replicated coordinator broker chain.

    Every mutating command goes to the *acting* coordinator — the first
    live broker in the fixed ring-owner list for ``coordinator:group:X``
    — and is then mirrored to the other live owners as a lenient
    ``REPL_GROUP`` delta carrying the primary's post-op generation.  When
    the acting broker dies (a :class:`~repro.exceptions.NodeUnavailableError`
    streak recorded into the router's failure detector), the owner walk
    lands on the next live replica, whose mirrored state — membership
    leases, generation, committed offsets, recorded ends — lets the group
    continue without losing a commit.  :attr:`failovers` counts acting-
    broker changes; consumers observing a bump force a rejoin/resync.
    """

    def __init__(self, group: str, router: PartitionRouter) -> None:
        self._group = group
        self._router = router
        self._key = f'group:{group}'
        #: Times the acting coordinator broker changed (observed by
        #: consumers as the force-rejoin signal).
        self.failovers = 0
        self._acting: str | None = None

    @property
    def acting_broker(self) -> str | None:
        """Node id of the broker that last served a coordinator command."""
        return self._acting

    def _call(self, op: Any, mirror: dict[str, Any] | None = None) -> Any:
        """Run ``op(client)`` on the acting coordinator with failover.

        Only :class:`~repro.exceptions.NodeUnavailableError` triggers the
        failover walk — any other connector error is the request's own
        problem (e.g. an expired member) and propagates to the caller.
        """
        last: Exception | None = None
        for _attempt in DEFAULT_RECONNECT_POLICY.attempts():
            for node in self._router.coordinator_owners(self._key):
                client = self._router.client_of(node)
                if client is None:
                    continue
                try:
                    result = op(client)
                except NodeUnavailableError as e:
                    self._router.record(node, ok=False, unavailable=True, error=e)
                    last = e
                    continue
                self._router.record(node, ok=True)
                if self._acting is not None and node != self._acting:
                    self.failovers += 1
                self._acting = node
                if mirror is not None:
                    if isinstance(result, dict) and 'generation' in result:
                        mirror['generation'] = result['generation']
                    self._mirror(node, mirror)
                return result
        raise last if last is not None else NodeUnavailableError(
            f'no coordinator broker reachable for group {self._group!r}',
        )

    def _mirror(self, primary: str, payload: dict[str, Any]) -> None:
        """Best-effort REPL_GROUP mirror to the non-acting live owners."""
        for node in self._router.owners(f'coordinator:{self._key}'):
            if node == primary or not self._router._alive(node):
                continue
            client = self._router.client_of(node)
            if client is None or not hasattr(client, 'repl_group'):
                continue
            try:
                client.repl_group(self._group, payload)
            except NodeUnavailableError as e:
                self._router.record(node, ok=False, unavailable=True, error=e)
            except ConnectorError as e:
                self._router.record(node, ok=False, error=e)
            else:
                self._router.record(node, ok=True)

    def join(self, member: str, session_timeout: float) -> dict[str, Any]:
        """Join on the acting coordinator; mirrored to the replicas."""
        return self._call(
            lambda c: c.group_join(
                self._group, member, session_timeout=session_timeout,
            ),
            mirror={
                'op': 'join', 'member': member,
                'session_timeout': session_timeout,
            },
        )

    def heartbeat(
        self,
        member: str,
        positions: dict[str, int],
        ends: dict[str, int] | None = None,
    ) -> dict[str, Any]:
        """Heartbeat the acting coordinator (lease refresh mirrors too)."""
        try:
            return self._call(
                lambda c: c.group_heartbeat(self._group, member, positions, ends),
                mirror={
                    'op': 'heartbeat', 'member': member,
                    'positions': dict(positions), 'ends': dict(ends or {}),
                },
            )
        except NodeUnavailableError:
            raise
        except ConnectorError as e:
            if 'unknown member' in str(e):
                raise GroupMembershipError(
                    f'member {member!r} expired from the group',
                ) from e
            raise

    def leave(self, member: str, positions: dict[str, int]) -> None:
        """Leave via the acting coordinator; mirrored to the replicas."""
        self._call(
            lambda c: c.group_leave(self._group, member, positions),
            mirror={
                'op': 'leave', 'member': member, 'positions': dict(positions),
            },
        )

    def commit(
        self,
        member: str,
        offsets: dict[str, int],
        positions: dict[str, int],
        ends: dict[str, int] | None = None,
    ) -> None:
        """Commit offsets on the acting coordinator; mirrored monotonically."""
        self._call(
            lambda c: c.offset_commit(
                self._group, offsets,
                member=member, positions=positions, ends=ends,
            ),
            mirror={
                'op': 'commit', 'member': member, 'offsets': dict(offsets),
                'positions': dict(positions), 'ends': dict(ends or {}),
            },
        )

    def fetch(self, topics: Sequence[str]) -> dict[str, dict[str, int]]:
        """Fetch offset state from the acting coordinator (read-only)."""
        return self._call(lambda c: c.offset_fetch(self._group, list(topics)))

    def stats(self) -> dict[str, Any]:
        """Fetch full group state from the acting coordinator (read-only)."""
        return self._call(lambda c: c.group_stats(self._group))


class GroupCoordinator:
    """Client handle to one group's membership and offset state.

    The state lives on the group's *designated broker* — the ring-primary
    of ``coordinator:{group}`` over the broker fleet — so every member
    finds the coordinator without any lookup service (the same
    coordinator-free placement partitions use).  Over the in-process
    transport the state is a process-global record keyed by the bus
    namespace, giving tests and single-process pipelines identical
    semantics without sockets.
    """

    def __init__(self, group: str, router: PartitionRouter) -> None:
        if not group:
            raise ValueError('group name must be non-empty')
        self.group = group
        designated = router.designated(f'group:{group}')
        client = getattr(designated, 'client', None)
        if client is not None and hasattr(client, 'group_join'):
            if router.replicas > 1:
                self._backend: Any = _ReplicatedKVBackend(group, router)
            else:
                self._backend = _KVBackend(client, group)
        elif type(designated).__name__ == 'LocalEventBus':
            self._backend = _LocalBackend(designated.bus_id, group)
        else:
            raise StreamGroupError(
                f'bus {designated!r} supports no group-state backend',
            )
        self.designated_broker = broker_id(designated)

    @property
    def failovers(self) -> int:
        """Coordinator-broker failovers observed (0 without replication)."""
        return getattr(self._backend, 'failovers', 0)

    def __repr__(self) -> str:
        return (
            f'GroupCoordinator(group={self.group!r}, '
            f'broker={self.designated_broker!r})'
        )

    def join(self, member: str, session_timeout: float) -> dict[str, Any]:
        """Register ``member``; returns the ``{'generation', 'members'}`` view."""
        return self._backend.join(member, session_timeout)

    def heartbeat(
        self,
        member: str,
        positions: dict[str, int],
        ends: dict[str, int] | None = None,
    ) -> dict[str, Any]:
        """Refresh the lease, report delivered positions and seen ends.

        Raises:
            GroupMembershipError: the member was expired and must rejoin.
            NodeUnavailableError: the designated broker is unreachable
                (transient — the caller retries on the next beat).
        """
        return self._backend.heartbeat(member, positions, ends)

    def leave(self, member: str, positions: dict[str, int]) -> None:
        """Deregister ``member`` voluntarily (immediate generation bump)."""
        self._backend.leave(member, positions)

    def commit(
        self,
        member: str,
        offsets: dict[str, int],
        positions: dict[str, int],
        ends: dict[str, int] | None = None,
    ) -> None:
        """Commit per-partition offsets (monotonic), positions, and ends."""
        self._backend.commit(member, offsets, positions, ends)

    def fetch(self, topics: Sequence[str]) -> dict[str, dict[str, Any]]:
        """Fetch ``{topic: {'committed', 'watermark', 'end', 'end_member'}}``."""
        return self._backend.fetch(topics)

    def stats(self) -> dict[str, Any]:
        """Return the group's full coordinator-side state."""
        return self._backend.stats()


# --------------------------------------------------------------------------- #
# The group consumer
# --------------------------------------------------------------------------- #
class _PartitionClaim:
    """One claimed partition: its subscription, cursor, and un-acked keys."""

    __slots__ = (
        'topic', 'subscription', 'read_pos', 'position', 'acked_through',
        'redeliver_below', 'unacked', 'ended', 'end_seq', 'lost_seen',
    )

    def __init__(
        self,
        topic: str,
        subscription: Any,
        committed: int,
        watermark: int,
    ) -> None:
        self.topic = topic
        self.subscription = subscription
        #: Next sequence number to read from the subscription (dedup guard).
        self.read_pos = committed
        #: Next sequence number to *yield to the caller* — everything the
        #: commit/watermark machinery reports is in yielded terms, so an
        #: in-flight batch that was read but never handed to the
        #: application is redelivered after a crash, not skipped.
        self.position = committed
        #: Offset already committed for this partition.
        self.acked_through = committed
        #: Events below this position were delivered before (by a previous
        #: claimant) but never acked — delivering them again is redelivery.
        self.redeliver_below = watermark
        #: Delivered-but-unacked ``(seq, key)`` pairs since the last ack.
        self.unacked: list[tuple[int, Any]] = []
        self.ended = False
        #: Sequence number of the end-of-stream marker (once delivered).
        self.end_seq: int | None = None
        #: Subscription lost-count already folded into the group totals.
        self.lost_seen = 0


class GroupConsumer:
    """A member of a consumer group over a partitioned topic.

    Joins ``group`` at construction, heartbeats in the background, and
    iterates exactly the partitions assigned to this member — yielding
    lazy proxies like :class:`~repro.stream.StreamConsumer`, but with
    **at-least-once** semantics: :meth:`ack` first evicts the delivered
    keys, then commits the per-partition offsets, so a crash at any point
    is recovered by redelivery (never by stranding keys).  When another
    member joins, leaves, or dies, the coordinator bumps the group
    generation and this consumer transparently re-syncs its partition
    claims on the next poll.

    Args:
        store: store the items' bulk data lives in.
        bus: the broker fleet — one bus/URL or a sequence of them.
        topic: the logical (partitioned) topic.
        group: consumer-group name; offsets and membership are scoped to it.
        partitions: partition count of the topic — must match the
            producer's (the coordinator-free contract, like agreeing on a
            hash ring).
        member: this member's id (generated when omitted; must be unique
            within the group).
        session_timeout: heartbeat lease seconds — miss it and the broker
            expires this member and survivors take its partitions.
        heartbeat_interval: seconds between heartbeats (default: a third
            of the session timeout).
        timeout: seconds without any delivered event before iteration
            raises ``TimeoutError`` (``None`` = wait forever).
        prefetch: kick off background resolution of up to this many
            delivered-but-unconsumed proxies.
        replicas: partition replication factor — must match the
            producer's.  Above 1, subscriptions fail over to replica
            brokers and the coordinator state survives the designated
            broker's death (the member rejoins on the surviving replica).

    Iteration ends when every partition assigned to this member has
    delivered its end-of-stream marker.  The marker is deliberately never
    committed past, so a partition re-claimed later replays it and the new
    claimant terminates too.
    """

    def __init__(
        self,
        store: 'Store',
        bus: 'Sequence[EventBus | str] | EventBus | str',
        topic: str,
        *,
        group: str,
        partitions: int,
        member: str | None = None,
        session_timeout: float = DEFAULT_SESSION_TIMEOUT,
        heartbeat_interval: float | None = None,
        timeout: float | None = 30.0,
        prefetch: int = 0,
        replicas: int = 1,
    ) -> None:
        if session_timeout <= 0:
            raise ValueError('session_timeout must be positive')
        if prefetch < 0:
            raise ValueError('prefetch must be non-negative')
        from repro.connectors.protocol import new_object_id

        self.store = store
        self.router = PartitionRouter(topic, partitions, bus, replicas=replicas)
        self.topic = topic
        self.group = group
        self.member = member if member is not None else f'member-{new_object_id()}'
        self.session_timeout = session_timeout
        self.heartbeat_interval = (
            heartbeat_interval if heartbeat_interval is not None
            else session_timeout / _HEARTBEAT_FRACTION
        )
        self.timeout = timeout
        self.prefetch = prefetch
        self.coordinator = GroupCoordinator(group, self.router)

        self._claims: dict[str, _PartitionClaim] = {}
        self._ready: list[tuple[str, Any, Any, bool, bool]] = []
        self._view_lock = threading.Lock()
        self._view: dict[str, Any] = {'generation': -1, 'members': []}
        self._needs_rejoin = False
        self._synced_generation = -1
        self._seen_failovers = 0
        self._closed = threading.Event()
        self._rr = 0

        self.delivered = 0
        self.redelivered = 0
        self.deduplicated = 0
        self.acked = 0
        self._lost = 0

        self._set_view(self.coordinator.join(self.member, session_timeout))
        self._heartbeat_thread = threading.Thread(
            target=self._heartbeat_loop,
            name=f'group-heartbeat-{self.member}',
            daemon=True,
        )
        self._heartbeat_thread.start()

    def __repr__(self) -> str:
        return (
            f'GroupConsumer(topic={self.topic!r}, group={self.group!r}, '
            f'member={self.member!r})'
        )

    # -- membership --------------------------------------------------------- #
    def _set_view(self, view: dict[str, Any]) -> None:
        with self._view_lock:
            if view['generation'] > self._view['generation']:
                self._view = view

    def _positions(self) -> dict[str, int]:
        """Delivered positions per claimed partition (the watermark report)."""
        # Snapshot: the heartbeat thread reads while the consumer thread
        # may be adding or dropping claims.
        return {
            topic: claim.position
            for topic, claim in list(self._claims.items())
        }

    def _ends(self) -> dict[str, int]:
        """End-marker seqs of the partitions *fully yielded* to the caller.

        A read-ahead marker with items still in the ready window is not an
        end yet: reporting it early would let the group conclude the
        partition is finished while this member still holds undelivered
        events.
        """
        return {
            topic: claim.end_seq
            for topic, claim in list(self._claims.items())
            if claim.end_seq is not None and claim.position >= claim.end_seq
        }

    def _heartbeat_loop(self) -> None:
        while not self._closed.wait(self.heartbeat_interval):
            try:
                self._set_view(
                    self.coordinator.heartbeat(
                        self.member, self._positions(), self._ends(),
                    ),
                )
            except GroupMembershipError:
                self._needs_rejoin = True
            except ConnectorError:
                # The designated broker is unreachable or mid-restart: a
                # transient condition — the next beat retries, and the
                # session only ends if the broker itself expires us.
                continue

    @property
    def generation(self) -> int:
        """The membership generation this member has synced to."""
        return self._synced_generation

    def refresh(self) -> int:
        """Heartbeat immediately and sync the partition assignment.

        Normally membership changes propagate at the heartbeat cadence;
        this forces a round trip now — useful to make a fleet converge on
        one generation deterministically (e.g. before starting a load, or
        in tests).  Returns the generation synced to.
        """
        try:
            self._set_view(
                self.coordinator.heartbeat(
                    self.member, self._positions(), self._ends(),
                ),
            )
        except GroupMembershipError:
            self._needs_rejoin = True
        self._sync_membership()
        return self._synced_generation

    @property
    def assignment(self) -> list[str]:
        """The partition topics currently claimed by this member."""
        return sorted(self._claims)

    def _sync_membership(self) -> None:
        """Re-derive this member's partition claims from the latest view."""
        failovers = self.coordinator.failovers
        if failovers != self._seen_failovers:
            # The coordinator broker changed under us.  The replica's
            # mirrored state is authoritative now but its generation may
            # trail the one we synced to — rejoin and resync from scratch.
            self._seen_failovers = failovers
            self._needs_rejoin = True
        if self._needs_rejoin:
            # Our lease expired (or the coordinator failed over):
            # survivors may already own our partitions.  Drop every claim
            # (their un-acked events will be redelivered — possibly to us)
            # and start over from the committed offsets.  The view resets
            # too: a stale generation from the old coordinator must not
            # out-rank the new acting coordinator's numbering.
            self._needs_rejoin = False
            self._drop_claims(list(self._claims))
            self._synced_generation = -1
            with self._view_lock:
                self._view = {'generation': -1, 'members': []}
            self._set_view(
                self.coordinator.join(self.member, self.session_timeout),
            )
        with self._view_lock:
            view = dict(self._view)
        if view['generation'] == self._synced_generation:
            return
        mine = assign_partitions(
            view['members'], self.router.topics,
        ).get(self.member, [])
        dropped = [t for t in self._claims if t not in mine]
        added = [t for t in mine if t not in self._claims]
        self._drop_claims(dropped)
        if added:
            offsets = self.coordinator.fetch(added)
            for topic in added:
                entry = offsets.get(topic, {})
                committed = int(entry.get('committed', 0))
                watermark = int(entry.get('watermark', 0))
                subscription = self.router.subscribe(
                    topic, from_seq=committed,
                )
                self._claims[topic] = _PartitionClaim(
                    topic, subscription, committed, watermark,
                )
        self._synced_generation = view['generation']

    def _drop_claims(self, topics: list[str]) -> None:
        """Release partitions reassigned away from this member.

        Their delivered-but-unacked events are *not* evicted and *not*
        committed: the new claimant resumes from the committed offset and
        redelivers them — the nack-back path that keeps handoff lossless.
        """
        for topic in topics:
            claim = self._claims.pop(topic, None)
            if claim is None:
                continue
            self._harvest_lost(claim)
            claim.subscription.close()
            self._ready = [
                entry for entry in self._ready if entry[0] != topic
            ]

    def _harvest_lost(self, claim: _PartitionClaim) -> None:
        delta = claim.subscription.lost - claim.lost_seen
        if delta > 0:
            self._lost += delta
            claim.lost_seen = claim.subscription.lost
            self._record('stream.group.lost', delta)

    # -- delivery ----------------------------------------------------------- #
    def _record(self, operation: str, count: int = 1, nbytes: int = 0) -> None:
        metrics = self.store.metrics
        if metrics is None or count <= 0:
            return
        for _ in range(count):
            metrics.record(operation, 0.0, nbytes)

    def _materialize(self, claim: _PartitionClaim, event: 'StreamEvent') -> None:
        """Deliver one decoded event from ``claim`` into the ready window."""
        from repro.stream.events import StreamEvent  # local: cycle avoidance

        assert isinstance(event, StreamEvent)
        if event.seq < claim.read_pos:
            return  # duplicate push/fetch overlap
        claim.read_pos = event.seq + 1
        if event.end:
            claim.ended = True
            claim.end_seq = event.seq
            return
        redelivered = event.seq < claim.redeliver_below
        if redelivered and event.key is not None and not self.store.exists(event.key):
            # The previous claimant evicted the key but died before its
            # commit landed: the work was done — skip, don't re-deliver a
            # proxy that can no longer resolve.  The skip still advances
            # the yield cursor so the commit can move past it.
            self.deduplicated += 1
            self._record('stream.group.deduplicated')
            # A skip entry keeps the yield cursor advancing in seq order.
            self._ready.append((claim.topic, event, None, redelivered, True))
            return
        if event.inline:
            assert event.payload is not None
            item: Any = self.store.deserializer(event.payload)
        else:
            item = Proxy(StoreFactory(event.key, self.store.config()))
            if self.prefetch and len(self._ready) <= self.prefetch:
                resolve_async(item)
        self._ready.append((claim.topic, event, item, redelivered, False))

    def _poll_once(self, slice_timeout: float) -> None:
        """One pass over the assigned subscriptions, budgeting the wait."""
        from repro.stream.events import StreamEvent

        claims = [c for c in self._claims.values() if not c.ended]
        if not claims:
            if not self._claims:
                # No partitions assigned (more members than partitions):
                # idle until a rebalance hands us some.
                self._closed.wait(slice_timeout)
            return
        per_claim = slice_timeout / len(claims)
        for offset in range(len(claims)):
            claim = claims[(self._rr + offset) % len(claims)]
            batch = claim.subscription.next_batch(timeout=per_claim)
            self._harvest_lost(claim)
            for seq, data in batch:
                self._materialize(claim, StreamEvent.decode(data, seq=seq))
        self._rr += 1

    def _group_done(self) -> bool:
        """Whether every partition of the topic is finished for the group.

        A partition is finished when its end marker is recorded and either
        the committed offset reached it (fully acked) or the member that
        delivered it is still alive (its ack is pending — and if it dies
        first, expiry re-opens the partition for redelivery).  Pushes our
        own ends via a heartbeat first so two members draining
        concurrently observe each other's markers.
        """
        try:
            self._set_view(
                self.coordinator.heartbeat(
                    self.member, self._positions(), self._ends(),
                ),
            )
            state = self.coordinator.fetch(self.router.topics)
        except GroupMembershipError:
            self._needs_rejoin = True
            return False
        except ConnectorError:
            return False
        with self._view_lock:
            members = set(self._view['members'])
        for topic in self.router.topics:
            entry = state.get(topic) or {}
            end = entry.get('end')
            if end is None:
                return False
            if int(entry.get('committed', 0)) >= int(end):
                continue
            if entry.get('end_member') not in members:
                return False
        return True

    def events(self) -> 'Iterator[tuple[StreamEvent, Any]]':
        """Yield ``(event, item)`` pairs from this member's partitions.

        Raises:
            TimeoutError: when no event arrives within ``timeout`` seconds
                (rebalances reset the clock — a claim handoff is progress).
        """
        deadline = (
            None if self.timeout is None
            else time.monotonic() + self.timeout
        )
        while not self._closed.is_set():
            before = self._synced_generation
            self._sync_membership()
            if self._synced_generation != before and deadline is not None:
                deadline = time.monotonic() + self.timeout  # type: ignore[operator]
            if not self._ready:
                self._poll_once(_POLL_SLICE)
            if self._ready:
                topic, event, item, redelivered, skip = self._ready.pop(0)
                claim = self._claims.get(topic)
                if claim is None:
                    continue  # partition was reassigned away mid-window
                # Delivery happens *here*, not at read time: the yield
                # cursor (commits, watermarks, the un-acked ledger) covers
                # exactly what the application has seen.
                claim.position = event.seq + 1
                if skip:
                    continue
                if redelivered and not event.inline:
                    # Resolve redelivered proxies *eagerly*: the previous
                    # claimant's fenced ack may still be in flight, and
                    # its evict can land between our exists check and the
                    # application's resolve.  A failed resolve here means
                    # the work was acked after all — dedup, don't crash.
                    try:
                        resolve(item)
                    except ProxyResolveError:
                        self.deduplicated += 1
                        self._record('stream.group.deduplicated')
                        continue
                if not event.inline:
                    claim.unacked.append((event.seq, event.key))
                self.delivered += 1
                self._record('stream.group.delivered', 1, event.nbytes)
                if redelivered:
                    self.redelivered += 1
                    self._record('stream.group.redelivered')
                yield event, item
                if deadline is not None:
                    deadline = time.monotonic() + self.timeout  # type: ignore[operator]
                continue
            if self._claims and all(c.ended for c in self._claims.values()):
                # Our partitions are drained, but the *group* may not be
                # done: a dead member's partitions could still rebalance
                # to us.  Return only once every partition of the topic is
                # finished; otherwise keep heartbeating and syncing.
                if self._group_done():
                    return
                self._closed.wait(_POLL_SLICE)
            if deadline is not None and time.monotonic() >= deadline:
                raise TimeoutError(
                    f'no event for group {self.group!r} member '
                    f'{self.member!r} within {self.timeout}s',
                )

    def __iter__(self) -> Iterator[Any]:
        for _event, item in self.events():
            yield item

    # -- acknowledgement ---------------------------------------------------- #
    def ack(self) -> int:
        """Evict every delivered key, then commit the offsets; returns count.

        Eviction precedes the commit deliberately: a crash between the two
        leaves *committed-behind* state, which redelivery plus the
        missing-key dedup check repairs — the opposite order could commit
        past events whose keys still exist, stranding them forever.

        The ack is *fenced*: it first heartbeats and syncs to the latest
        generation, so a partition reassigned away since the last sync is
        nacked back (nothing evicted, nothing committed) rather than
        acked concurrently with its new owner — without the fence the old
        owner could evict a key the new owner is about to resolve.  The
        fence heartbeat also reports the delivered positions, so anything
        this member acks right after it is inside the new owner's
        redelivery window and hits the missing-key dedup check instead of
        a failed resolve.
        """
        self.refresh()
        keys = []
        offsets: dict[str, int] = {}
        counted = 0
        for claim in self._claims.values():
            if claim.unacked:
                keys.extend(key for _seq, key in claim.unacked)
                counted += len(claim.unacked)
                claim.unacked = []
            if claim.position > claim.acked_through or claim.ended:
                offsets[claim.topic] = claim.position
                claim.acked_through = claim.position
        if keys:
            self.store.evict_batch(keys)
        if offsets:
            self.coordinator.commit(
                self.member, offsets, self._positions(), self._ends(),
            )
            self._record('stream.group.commits')
        self.acked += counted
        return counted

    # -- accounting ---------------------------------------------------------- #
    @property
    def lost(self) -> int:
        """Events that aged out of broker retention before delivery here."""
        for claim in self._claims.values():
            self._harvest_lost(claim)
        return self._lost

    def stats(self) -> dict[str, Any]:
        """This member's delivery accounting and membership position."""
        return {
            'group': self.group,
            'member': self.member,
            'generation': self._synced_generation,
            'assignment': self.assignment,
            'delivered': self.delivered,
            'redelivered': self.redelivered,
            'deduplicated': self.deduplicated,
            'acked': self.acked,
            'lost': self.lost,
        }

    # -- lifecycle ----------------------------------------------------------- #
    def close(self, *, ack_pending: bool = False) -> None:
        """Leave the group, releasing this member's partitions to survivors.

        Delivered-but-unacked events are *nacked back*: their offsets stay
        uncommitted and their keys stay stored, so the members that claim
        these partitions redeliver them — nothing is stranded, nothing is
        silently dropped.  ``ack_pending=True`` instead acks (evicts and
        commits) everything delivered before leaving.
        """
        if self._closed.is_set():
            return
        if ack_pending:
            self.ack()
        self._closed.set()
        try:
            self.coordinator.leave(self.member, self._positions())
        except ConnectorError:  # broker already gone: expiry will handle it
            pass
        for claim in self._claims.values():
            claim.subscription.close()
        self._claims.clear()
        self._heartbeat_thread.join(timeout=2.0)
        self.router.close()

    def __enter__(self) -> 'GroupConsumer':
        return self

    def __exit__(self, exc_type: Any, exc_value: Any, traceback: Any) -> None:
        self.close()

    def __reduce__(self) -> Any:
        """Group consumers do not pickle: membership is a live lease.

        A pickled copy would duplicate the member id (two heartbeats, one
        lease) and silently split the un-acked bookkeeping.  Construct a
        new consumer in the target process — it joins as a fresh member
        and the group rebalances to include it.
        """
        raise StoreError(
            'a GroupConsumer cannot be pickled: group membership is a live '
            'heartbeat lease; construct a consumer with the same group= in '
            'the target process and the partitions will rebalance to it',
        )
