"""Event buses: the pub/sub transport under streaming proxy channels.

An :class:`EventBus` moves small opaque payloads (encoded
:class:`~repro.stream.StreamEvent` records) between producers and
consumers:

* ``publish(topic, payload)`` appends the payload to the topic's bounded
  *ring buffer* and returns its monotonically increasing sequence number.
* ``subscribe(topic)`` returns a :class:`Subscription` that yields
  ``(seq, payload)`` pairs in publication order.  Subscribing with
  ``from_seq`` replays retained history (catch-up); events that aged out
  of the ring before the subscriber observed them are counted in
  :attr:`Subscription.lost` instead of blocking the producer — retention
  is the explicit, bounded trade-off that keeps a slow consumer from
  growing broker memory without bound.

Two implementations ship with the library and more can be registered:

* :class:`LocalEventBus` — in-process topics for single-node pipelines
  (``local://bus-id``); subscribers read straight from the shared ring.
* :class:`~repro.stream.kv.KVEventBus` — topics brokered by the SimKV
  event-loop server (``kv://host:port``), with server-side fan-out to
  subscriber connections.

:func:`event_bus_from_url` selects the implementation by URL scheme
through a registry mirroring the connector registry, so streaming code is
transport-agnostic the same way stores are.
"""
from __future__ import annotations

import threading
from typing import Any
from typing import Iterator
from typing import Protocol
from typing import Sequence
from typing import runtime_checkable

from repro.connectors.registry import StoreURL
from repro.exceptions import UnknownConnectorSchemeError

__all__ = [
    'DEFAULT_LOCAL_RETENTION',
    'EventBus',
    'LocalEventBus',
    'Subscription',
    'broker_id',
    'event_bus_from_url',
    'list_event_buses',
    'register_event_bus',
]

#: Default per-topic ring retention of the in-process bus.
DEFAULT_LOCAL_RETENTION = 256


@runtime_checkable
class Subscription(Protocol):
    """A consumer's position on one topic.

    Iterating a subscription yields ``(seq, payload)`` pairs in sequence
    order; :meth:`next_batch` is the non-blocking-friendly form used by
    :class:`~repro.stream.StreamConsumer`.
    """

    def next_batch(self, timeout: float | None = None) -> list[tuple[int, Any]]:
        """Return the next available events (empty list on timeout)."""
        ...

    @property
    def lost(self) -> int:
        """Events that aged out of retention before this subscriber saw them."""
        ...

    @property
    def position(self) -> int:
        """Sequence number of the next event this subscriber will deliver."""
        ...

    def close(self) -> None:
        """Detach from the topic and release transport resources."""
        ...


@runtime_checkable
class EventBus(Protocol):
    """Protocol every event-bus implementation satisfies."""

    def publish(self, topic: str, payload: 'bytes | bytearray | memoryview') -> int:
        """Publish one payload on ``topic``; returns its sequence number."""
        ...

    def publish_batch(self, topic: str, payloads: Sequence[Any]) -> list[int]:
        """Publish several payloads on ``topic`` (one round trip where possible)."""
        ...

    def subscribe(self, topic: str, *, from_seq: int | None = None) -> Subscription:
        """Return a :class:`Subscription` to ``topic``.

        ``from_seq`` replays retained history from that sequence number;
        ``None`` delivers only events published after the subscription.
        """
        ...

    def topic_stats(self, topic: str) -> dict[str, Any] | None:
        """Return broker statistics for ``topic`` (``None`` if unknown)."""
        ...

    def configure_topic(self, topic: str, *, retention: int) -> None:
        """Bound ``topic``'s ring buffer to ``retention`` events."""
        ...

    def config(self) -> dict[str, Any]:
        """Return a picklable dict from which an equivalent bus can be built."""
        ...

    def close(self) -> None:
        """Release transport resources held by this bus handle."""
        ...


def broker_id(bus: EventBus) -> str:
    """Stable, process-independent identity of the broker behind ``bus``.

    Partitioned topics place each partition on a broker through a
    consistent-hash ring over these ids (see :mod:`repro.stream.groups`),
    so two processes handed the same broker URLs must derive the *same*
    id per broker: the id is built from the bus config's addressing
    fields (scheme plus host:port or bus id), never from handle identity.
    """
    config = bus.config()
    scheme = config.get('scheme', bus.__class__.__name__)
    if 'host' in config and 'port' in config:
        return f'{scheme}://{config["host"]}:{config["port"]}'
    if 'bus_id' in config:
        return f'{scheme}://{config["bus_id"]}'
    # Fallback for third-party buses: every non-callable config field.
    detail = ','.join(
        f'{k}={v}' for k, v in sorted(config.items()) if k != 'scheme'
    )
    return f'{scheme}://{detail}'


# --------------------------------------------------------------------------- #
# Scheme registry (mirrors repro.connectors.registry)
# --------------------------------------------------------------------------- #
_BUS_SCHEMES: dict[str, type] = {}
_REGISTRY_LOCK = threading.Lock()


def register_event_bus(scheme: str, cls: type, *, replace: bool = False) -> None:
    """Register ``cls`` as the event-bus class for ``scheme``.

    Re-registering the same class is a no-op; claiming a scheme held by a
    different class raises ``ValueError`` unless ``replace=True``.
    """
    if not isinstance(scheme, str) or not scheme:
        raise ValueError('event bus scheme must be a non-empty string')
    scheme = scheme.lower()
    with _REGISTRY_LOCK:
        existing = _BUS_SCHEMES.get(scheme)
        if existing is not None and existing is not cls and not replace:
            raise ValueError(
                f'event bus scheme {scheme!r} is already registered to '
                f'{existing.__module__}:{existing.__qualname__}',
            )
        _BUS_SCHEMES[scheme] = cls


def list_event_buses() -> dict[str, type]:
    """Return a snapshot of the scheme -> event-bus-class mapping."""
    with _REGISTRY_LOCK:
        return dict(sorted(_BUS_SCHEMES.items()))


def event_bus_from_url(url: 'str | StoreURL') -> EventBus:
    """Build an event bus from a URL; the scheme selects the implementation.

    Examples::

        event_bus_from_url('local://my-pipeline?retention=64')
        event_bus_from_url('kv://127.0.0.1:7777?launch=1')

    Raises:
        UnknownConnectorSchemeError: if no bus claims the URL's scheme.
    """
    parsed = StoreURL.parse(url)
    cls = _lookup_scheme(parsed.scheme)
    if cls is None:
        known = ', '.join(sorted(_BUS_SCHEMES)) or '<none>'
        raise UnknownConnectorSchemeError(
            f'no event bus is registered for scheme {parsed.scheme!r} '
            f'(known schemes: {known})',
        )
    bus = cls.from_url(parsed)
    parsed.ensure_consumed()
    return bus


def _lookup_scheme(scheme: str) -> type | None:
    """Resolve a bus scheme, importing the built-in buses on first miss."""
    scheme = scheme.lower()
    with _REGISTRY_LOCK:
        cls = _BUS_SCHEMES.get(scheme)
    if cls is None:
        import repro.stream.kv  # noqa: F401 - registers the KV bus

        with _REGISTRY_LOCK:
            cls = _BUS_SCHEMES.get(scheme)
    return cls


# --------------------------------------------------------------------------- #
# In-process bus
# --------------------------------------------------------------------------- #
class _LocalTopic:
    """One in-process topic: a bounded ring plus a wakeup condition."""

    __slots__ = ('ring', 'ring_bytes', 'next_seq', 'retention', 'cond',
                 'dropped_events')

    def __init__(self, retention: int) -> None:
        self.ring: list[tuple[int, bytes]] = []
        self.ring_bytes = 0
        self.next_seq = 0
        self.retention = retention
        self.cond = threading.Condition()
        self.dropped_events = 0

    def append_locked(self, payload: bytes) -> int:
        """Append one payload (caller holds ``cond``); returns its seq."""
        seq = self.next_seq
        self.next_seq += 1
        self.ring.append((seq, payload))
        self.ring_bytes += len(payload)
        overflow = len(self.ring) - self.retention
        if overflow > 0:
            for _, old in self.ring[:overflow]:
                self.ring_bytes -= len(old)
            del self.ring[:overflow]
            self.dropped_events += overflow
        return seq


# Named in-process buses so a bus re-created from its config (or URL) in the
# same process sees the same topics — mirroring LocalConnector's store_id.
_GLOBAL_BUSES: dict[str, dict[str, _LocalTopic]] = {}
_GLOBAL_LOCK = threading.Lock()


class _LocalSubscription:
    """Cursor over a :class:`_LocalTopic`'s shared ring buffer."""

    def __init__(self, bus: 'LocalEventBus', topic: str, from_seq: int | None) -> None:
        self._topic = bus._topic(topic)
        with self._topic.cond:
            self._cursor = (
                self._topic.next_seq if from_seq is None else from_seq
            )
        self._lost = 0
        self._closed = False

    @property
    def lost(self) -> int:
        """Events that aged out of retention before this subscriber saw them."""
        return self._lost

    @property
    def position(self) -> int:
        """Sequence number of the next event this subscriber will deliver."""
        return self._cursor

    def next_batch(self, timeout: float | None = None) -> list[tuple[int, bytes]]:
        """Return every retained event past the cursor (empty on timeout).

        A cursor that fell behind the ring start (slow consumer) skips
        ahead to the oldest retained event and counts the difference in
        :attr:`lost` — the retention bound in action.
        """
        if self._closed:
            return []
        topic = self._topic
        with topic.cond:
            if topic.next_seq <= self._cursor:
                # The predicate also checks closed so close() from another
                # thread can wake an indefinitely blocked consumer.
                topic.cond.wait_for(
                    lambda: self._closed or topic.next_seq > self._cursor,
                    timeout=timeout,
                )
            if self._closed or topic.next_seq <= self._cursor:
                return []
            start = topic.ring[0][0] if topic.ring else topic.next_seq
            if start > self._cursor:
                self._lost += start - self._cursor
                self._cursor = start
            batch = [
                (seq, payload)
                for seq, payload in topic.ring
                if seq >= self._cursor
            ]
            if batch:
                self._cursor = batch[-1][0] + 1
            return batch

    def close(self) -> None:
        """Detach from the topic, waking any thread blocked in ``next_batch``."""
        self._closed = True
        with self._topic.cond:
            self._topic.cond.notify_all()


class LocalEventBus:
    """In-process event bus: per-topic bounded ring buffers plus wakeups.

    Args:
        bus_id: name of a process-global topic namespace.  Two buses built
            with the same ``bus_id`` (e.g. one in a producer thread, one in
            a consumer thread) share topics.  Omitted: a fresh anonymous
            namespace (with a generated id, so ``config()`` round-trips).
        retention: ring-buffer bound applied to topics created through
            this handle.

    Subscribers read directly from the shared ring, so broker memory per
    topic is exactly the ring: a slow consumer loses aged-out events
    (counted on its subscription) rather than growing any queue.
    """

    scheme = 'local'

    def __init__(
        self,
        bus_id: str | None = None,
        *,
        retention: int = DEFAULT_LOCAL_RETENTION,
    ) -> None:
        if retention < 1:
            raise ValueError('retention must be at least 1')
        from repro.connectors.protocol import new_object_id

        self.bus_id = bus_id if bus_id is not None else new_object_id()
        self.retention = retention
        with _GLOBAL_LOCK:
            self._topics = _GLOBAL_BUSES.setdefault(self.bus_id, {})

    def __repr__(self) -> str:
        return f'LocalEventBus(bus_id={self.bus_id!r})'

    def _topic(self, name: str) -> _LocalTopic:
        with _GLOBAL_LOCK:
            topic = self._topics.get(name)
            if topic is None:
                topic = self._topics[name] = _LocalTopic(self.retention)
            return topic

    # -- EventBus protocol ------------------------------------------------- #
    def publish(self, topic: str, payload: 'bytes | bytearray | memoryview') -> int:
        """Publish one payload on ``topic``; returns its sequence number."""
        t = self._topic(topic)
        data = bytes(payload)
        with t.cond:
            seq = t.append_locked(data)
            t.cond.notify_all()
        return seq

    def publish_batch(self, topic: str, payloads: Sequence[Any]) -> list[int]:
        """Publish several payloads on ``topic`` under one lock acquisition."""
        t = self._topic(topic)
        datas = [bytes(p) for p in payloads]
        with t.cond:
            seqs = [t.append_locked(d) for d in datas]
            t.cond.notify_all()
        return seqs

    def subscribe(self, topic: str, *, from_seq: int | None = None) -> _LocalSubscription:
        """Return a subscription cursor over ``topic``'s shared ring."""
        return _LocalSubscription(self, topic, from_seq)

    def topic_stats(self, topic: str) -> dict[str, Any] | None:
        """Return ring statistics for ``topic`` (``None`` if never used)."""
        with _GLOBAL_LOCK:
            t = self._topics.get(topic)
        if t is None:
            return None
        with t.cond:
            return {
                'next_seq': t.next_seq,
                'ring_events': len(t.ring),
                'ring_bytes': t.ring_bytes,
                'retention': t.retention,
                'dropped_events': t.dropped_events,
            }

    def configure_topic(self, topic: str, *, retention: int) -> None:
        """Set ``topic``'s ring retention, trimming immediately."""
        if retention < 1:
            raise ValueError('retention must be at least 1')
        t = self._topic(topic)
        with t.cond:
            t.retention = retention
            overflow = len(t.ring) - retention
            if overflow > 0:
                for _, old in t.ring[:overflow]:
                    t.ring_bytes -= len(old)
                del t.ring[:overflow]
                t.dropped_events += overflow

    def config(self) -> dict[str, Any]:
        """Return a picklable dict re-creating this bus (same process only)."""
        return {
            'scheme': self.scheme,
            'bus_id': self.bus_id,
            'retention': self.retention,
        }

    @classmethod
    def from_config(cls, config: dict[str, Any]) -> 'LocalEventBus':
        """Rebuild a bus handle from a :meth:`config` dictionary."""
        return cls(config['bus_id'], retention=config['retention'])

    @classmethod
    def from_url(cls, url: 'StoreURL | str') -> 'LocalEventBus':
        """Build from ``local://[bus-id][?retention=N]``."""
        url = StoreURL.parse(url)
        retention = url.pop_int('retention', DEFAULT_LOCAL_RETENTION)
        assert retention is not None
        return cls(url.netloc or None, retention=retention)

    def close(self) -> None:
        """Release this handle (topics persist for other same-id handles)."""

    def __enter__(self) -> 'LocalEventBus':
        return self

    def __exit__(self, exc_type: Any, exc_value: Any, traceback: Any) -> None:
        self.close()

    def __iter__(self) -> Iterator[str]:
        with _GLOBAL_LOCK:
            return iter(sorted(self._topics))


register_event_bus('local', LocalEventBus)


def bus_from_config(config: dict[str, Any]) -> EventBus:
    """Rebuild an event bus from any bus's ``config()`` dictionary.

    The ``scheme`` entry selects the implementation through the registry;
    this is how pickled producers/consumers re-attach to their transport in
    another process.
    """
    scheme = config.get('scheme')
    if not scheme:
        raise ValueError('bus config has no scheme')
    cls = _lookup_scheme(str(scheme))
    if cls is None:
        raise UnknownConnectorSchemeError(
            f'no event bus is registered for scheme {scheme!r}',
        )
    return cls.from_config({k: v for k, v in config.items() if k != 'scheme'})


__all__.append('bus_from_config')
