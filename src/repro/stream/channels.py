"""Streaming proxy channels: ``StreamProducer`` and ``StreamConsumer``.

The streaming extension of the paper's model: a producer publishes an
*unbounded sequence* of objects, and each object's bulk data flows through
a mediated channel (a :class:`~repro.store.Store`) while only a tiny
:class:`~repro.stream.StreamEvent` — key plus metadata — travels on the
event bus.  Consumers iterate the topic and receive lazy proxies, so the
control plane stays cheap no matter the item size and consumers resolve
bulk data directly from the store, exactly like one-shot proxies but for
sustained traffic.

Lifetime management is first-class because streams never end on their own:

* ``owned=True`` consumers yield :class:`~repro.proxy.OwnedProxy` items —
  dropping the proxy (GC, ``drop()``, context exit) evicts the backing
  key, so a consume-and-discard loop cannot fill the backing store.
* Plain consumers track delivered keys; :meth:`StreamConsumer.ack`
  batch-evicts everything delivered since the last ack (one
  ``evict_batch`` round trip), and a caller-supplied ``lifetime`` binds
  every delivered key to an enclosing scope as a safety net.

Producers and consumers pickle: the state that travels is the store
config, the bus config, the topic, and (for consumers) the current
position plus any delivered-but-unacked keys — so a consumer can be
shipped to another process, resume where it left off, and still evict
everything it was responsible for, the same way proxies rebuild their
stores anywhere.

Two fleet-scale extensions live on top of this module:

* ``StreamProducer(partitions=N, ...)`` splits the topic into N partition
  topics spread deterministically over a broker fleet (see
  :class:`~repro.stream.groups.PartitionRouter`), routing each send by an
  optional ``partition_key`` (stable ``blake2b`` hashing) or round-robin.
* ``StreamConsumer(group=..., partitions=N)`` constructs a
  :class:`~repro.stream.groups.GroupConsumer` instead: members of the
  group split the partitions, commit offsets on ``ack()``, and redeliver
  a crashed member's un-acked events — at-least-once delivery.
"""
from __future__ import annotations

import time
from collections import deque
from typing import Any
from typing import Callable
from typing import Iterator
from typing import Sequence
from typing import TYPE_CHECKING

from repro.exceptions import StoreError
from repro.proxy.owned import OwnedProxy
from repro.proxy.proxy import Proxy
from repro.proxy.resolve import resolve_async
from repro.serialize.buffers import payload_nbytes
from repro.serialize.buffers import to_bytes
from repro.serialize.serializer import small_frame_threshold
from repro.store.factory import StoreFactory
from repro.store.registry import get_or_create_store
from repro.stream.bus import EventBus
from repro.stream.bus import bus_from_config
from repro.stream.bus import event_bus_from_url
from repro.stream.events import StreamEvent

if TYPE_CHECKING:  # pragma: no cover - import cycle avoidance
    from repro.store.lifetimes import Lifetime
    from repro.store.store import Store

__all__ = ['StreamConsumer', 'StreamProducer']

#: Default seconds a consumer waits for the next event before giving up.
DEFAULT_CONSUME_TIMEOUT = 30.0

#: Valid per-item routing policies for ``StreamProducer``.
PRODUCER_POLICIES = ('proxy', 'inline', 'auto')


def _resolve_bus(bus: 'EventBus | str') -> EventBus:
    """Accept either an event-bus instance or a bus URL."""
    if isinstance(bus, str):
        return event_bus_from_url(bus)
    return bus


def _preserialized(data: Any) -> Any:
    """Serializer passed to ``Store.put`` for already-serialized payloads."""
    return data


class StreamProducer:
    """Publishes a stream of objects as store payloads plus tiny events.

    Args:
        store: store the bulk data of each item is put into (any
            connector; the zero-copy path applies unchanged).
        bus: event bus carrying the per-item events, or a bus URL
            (``local://...``, ``kv://host:port``).
        topic: topic the events are published on.
        inline: embed each item's serialized payload in the event itself
            instead of storing it — the "data rides the message bus"
            baseline.  Per-call ``send(..., inline=...)`` overrides this.
            Shorthand for ``policy='inline'``.
        policy: per-item routing policy — ``'proxy'`` (store + key event,
            the default), ``'inline'`` (payload rides the event), or
            ``'auto'`` (measure each item's serialized size and inline it
            when at most ``inline_threshold`` bytes, proxy it otherwise —
            small items skip the store round trip entirely, large items
            keep the cheap control plane).  Routes taken are counted in
            ``inline_sends``/``proxy_sends`` and, when the store records
            metrics, under ``stream.inline_sends``/``stream.proxy_sends``.
        inline_threshold: byte bound for the ``'auto'`` decision; defaults
            to the serializer's small-frame threshold so the streaming
            fast path and the serializer fast path agree on what "small"
            means.
        serializer: optional per-producer serializer override.
        partitions: split the topic into this many partition topics placed
            over the broker(s) by consistent hashing.  ``1`` (the default)
            keeps the plain, unpartitioned topic; more enable consumer
            groups to divide the stream (``bus`` may then be a sequence of
            buses/URLs forming a broker fleet).
        replicas: mirror each partition's events onto this many ring
            brokers (requires ``partitions > 1``).  Above 1, publishes
            survive a broker death: the producer fails over to the next
            live replica with jittered backoff.

    Thread safety: ``send``/``send_batch`` may be called from many threads
    concurrently (stores and buses are thread-safe); ``close`` must not
    race sends.
    """

    def __init__(
        self,
        store: 'Store',
        bus: 'EventBus | str | Sequence[EventBus | str]',
        topic: str,
        *,
        inline: bool = False,
        policy: str | None = None,
        inline_threshold: int | None = None,
        serializer: Callable[[Any], bytes] | None = None,
        partitions: int = 1,
        replicas: int = 1,
    ) -> None:
        if policy is None:
            policy = 'inline' if inline else 'proxy'
        elif policy not in PRODUCER_POLICIES:
            raise ValueError(
                f'unknown stream policy {policy!r}; '
                f'expected one of {PRODUCER_POLICIES}',
            )
        if partitions < 1:
            raise ValueError('partitions must be at least 1')
        if replicas > 1 and partitions < 2:
            raise ValueError('replicas > 1 requires a partitioned topic')
        self.store = store
        if partitions > 1 or (
            not isinstance(bus, (str, bytes)) and isinstance(bus, Sequence)
        ):
            from repro.stream.groups import PartitionRouter

            self._router = PartitionRouter(
                topic, partitions, bus, replicas=replicas,
            )
            self.bus = self._router.brokers[0]
        else:
            self._router = None
            self.bus = _resolve_bus(bus)  # type: ignore[arg-type]
        self.topic = topic
        self.partitions = partitions
        self.policy = policy
        self.inline = policy == 'inline'
        self.inline_threshold = (
            inline_threshold if inline_threshold is not None
            else small_frame_threshold()
        )
        self._serializer = serializer
        self._closed = False
        self._rr = 0
        self.sent = 0
        self.inline_sends = 0
        self.proxy_sends = 0

    def __repr__(self) -> str:
        return (
            f'StreamProducer(store={self.store.name!r}, topic={self.topic!r})'
        )

    def _check_open(self) -> None:
        if self._closed:
            raise StoreError(
                f'producer for topic {self.topic!r} is closed; the '
                'end-of-stream marker has already been published',
            )

    def _record_route(self, inline: bool, nbytes: int) -> None:
        """Count one routed send (and mirror it into the store's metrics)."""
        metrics = self.store.metrics
        if inline:
            self.inline_sends += 1
            if metrics is not None:
                metrics.record('stream.inline_sends', 0.0, nbytes)
        else:
            self.proxy_sends += 1
            if metrics is not None:
                metrics.record('stream.proxy_sends', 0.0, nbytes)

    def _event_for(
        self,
        obj: Any,
        metadata: dict[str, Any] | None,
        policy: str,
    ) -> StreamEvent:
        """Route one item per ``policy`` and build its event."""
        if policy != 'proxy':
            serializer = (
                self._serializer if self._serializer is not None
                else self.store.serializer
            )
            data = serializer(obj)
            nbytes = payload_nbytes(data)
            if policy == 'inline' or nbytes <= self.inline_threshold:
                self._record_route(True, nbytes)
                return StreamEvent(
                    metadata=dict(metadata or {}),
                    nbytes=nbytes,
                    payload=to_bytes(data),
                )
            # Too large to inline: reuse the bytes already serialized for
            # the size measurement rather than serializing twice.
            key = self.store.put(data, serializer=_preserialized)
            self._record_route(False, nbytes)
            return StreamEvent(key=key, metadata=dict(metadata or {}))
        key = self.store.put(obj, serializer=self._serializer)
        self._record_route(False, 0)
        return StreamEvent(key=key, metadata=dict(metadata or {}))

    def _route_batch(
        self,
        objs: list[Any],
        metas: 'list[dict[str, Any] | None]',
    ) -> list[StreamEvent]:
        """Auto-route a batch: inline the small items, batch-store the rest.

        All over-threshold items still go through one ``put_batch`` (one
        connector round trip on batching connectors), with their
        already-serialized bytes reused.
        """
        serializer = (
            self._serializer if self._serializer is not None
            else self.store.serializer
        )
        events: list[StreamEvent | None] = [None] * len(objs)
        to_store: list[tuple[int, Any, int]] = []
        for index, obj in enumerate(objs):
            data = serializer(obj)
            nbytes = payload_nbytes(data)
            if nbytes <= self.inline_threshold:
                self._record_route(True, nbytes)
                events[index] = StreamEvent(
                    metadata=dict(metas[index] or {}),
                    nbytes=nbytes,
                    payload=to_bytes(data),
                )
            else:
                to_store.append((index, data, nbytes))
        if to_store:
            keys = self.store.put_batch(
                [data for _, data, _ in to_store],
                serializer=_preserialized,
            )
            for (index, _, nbytes), key in zip(to_store, keys):
                self._record_route(False, nbytes)
                events[index] = StreamEvent(
                    key=key, metadata=dict(metas[index] or {}),
                )
        return events  # type: ignore[return-value]

    def _partition_of(self, partition_key: 'str | None') -> int:
        """Partition index for one send: keyed hash or round-robin."""
        if self._router is None:
            return 0
        if partition_key is not None:
            from repro.stream.groups import partition_for

            return partition_for(partition_key, self.partitions)
        index = self._rr % self.partitions
        self._rr += 1
        return index

    def _publish(self, partition: int, data: bytes) -> int:
        if self._router is None:
            return self.bus.publish(self.topic, data)
        return self._router.publish(self._router.topics[partition], data)

    def send(
        self,
        obj: Any,
        *,
        metadata: dict[str, Any] | None = None,
        inline: bool | None = None,
        partition_key: str | None = None,
    ) -> int:
        """Publish one item; returns its sequence number on its partition.

        The item's bytes go through ``store.put`` (zero-copy where the
        connector supports it) and only the key travels in the event —
        unless ``inline`` embeds the payload in the event itself.  On a
        partitioned topic the event lands on the partition chosen by
        ``partition_key`` (stable hashing: equal keys share a partition,
        preserving their relative order) or round-robin when omitted.

        Raises:
            StoreError: if the producer is already closed.
        """
        self._check_open()
        policy = (
            self.policy if inline is None
            else ('inline' if inline else 'proxy')
        )
        event = self._event_for(obj, metadata, policy)
        seq = self._publish(self._partition_of(partition_key), event.encode())
        self.sent += 1
        return seq

    def send_batch(
        self,
        objs: Sequence[Any],
        *,
        metadata: Sequence[dict[str, Any] | None] | None = None,
        inline: bool | None = None,
        partition_keys: Sequence[str | None] | None = None,
    ) -> list[int]:
        """Publish several items with batched store and bus operations.

        Bulk data goes through one ``store.put_batch`` (one connector
        round trip on batching connectors) and all events through one
        ``publish_batch`` frame per partition touched.
        """
        self._check_open()
        policy = (
            self.policy if inline is None
            else ('inline' if inline else 'proxy')
        )
        metas = list(metadata) if metadata is not None else [None] * len(objs)
        if len(metas) != len(objs):
            raise ValueError('metadata must match objs in length')
        pkeys = (
            list(partition_keys) if partition_keys is not None
            else [None] * len(objs)
        )
        if len(pkeys) != len(objs):
            raise ValueError('partition_keys must match objs in length')
        if policy == 'inline':
            events = [
                self._event_for(obj, meta, 'inline')
                for obj, meta in zip(objs, metas)
            ]
        elif policy == 'auto':
            events = self._route_batch(list(objs), metas)
        else:
            keys = self.store.put_batch(list(objs), serializer=self._serializer)
            events = [
                StreamEvent(key=key, metadata=dict(meta or {}))
                for key, meta in zip(keys, metas)
            ]
            for _ in keys:
                self._record_route(False, 0)
        if self._router is None:
            seqs = list(self.bus.publish_batch(
                self.topic, [event.encode() for event in events],
            ))
        else:
            by_partition: dict[int, list[int]] = {}
            for index, pkey in enumerate(pkeys):
                by_partition.setdefault(
                    self._partition_of(pkey), [],
                ).append(index)
            seqs = [0] * len(events)
            for partition, indices in by_partition.items():
                topic = self._router.topics[partition]
                batch_seqs = self._router.publish_batch(
                    topic, [events[i].encode() for i in indices],
                )
                for i, seq in zip(indices, batch_seqs):
                    seqs[i] = seq
        self.sent += len(objs)
        return seqs

    def close(self, *, end: bool = True) -> None:
        """Mark the stream finished.

        Args:
            end: publish an end-of-stream event so iterating consumers
                terminate (set ``False`` when other producers will keep
                publishing on the topic).

        The store and bus are shared handles and are *not* closed.
        Idempotent.
        """
        if self._closed:
            return
        self._closed = True
        if end:
            if self._router is None:
                self.bus.publish(self.topic, StreamEvent(end=True).encode())
            else:
                # Every partition gets its own marker: group members end
                # independently once each of their partitions is drained.
                for topic in self._router.topics:
                    self._router.publish(
                        topic, StreamEvent(end=True).encode(),
                    )

    def __enter__(self) -> 'StreamProducer':
        return self

    def __exit__(self, exc_type: Any, exc_value: Any, traceback: Any) -> None:
        self.close(end=exc_type is None)

    # -- pickling ----------------------------------------------------------- #
    def __getstate__(self) -> dict[str, Any]:
        if self._serializer is not None:
            raise StoreError(
                'a producer with a custom serializer cannot be pickled '
                '(callables do not travel); create it in the target process',
            )
        state = {
            'store_config': self.store.config(),
            'bus_config': self.bus.config(),
            'topic': self.topic,
            'inline': self.inline,
            'policy': self.policy,
            'inline_threshold': self.inline_threshold,
        }
        if self._router is not None:
            state['router_config'] = self._router.config()
        return state

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.store = get_or_create_store(state['store_config'])
        router_config = state.get('router_config')
        if router_config is not None:
            from repro.stream.groups import PartitionRouter

            self._router = PartitionRouter.from_config(router_config)
            self.bus = self._router.brokers[0]
            self.partitions = self._router.partitions
        else:
            self._router = None
            self.bus = bus_from_config(state['bus_config'])
            self.partitions = 1
        self.topic = state['topic']
        # 'policy' may be absent in state pickled by older producers.
        self.policy = state.get(
            'policy', 'inline' if state['inline'] else 'proxy',
        )
        self.inline = self.policy == 'inline'
        self.inline_threshold = state.get(
            'inline_threshold', small_frame_threshold(),
        )
        self._serializer = None
        self._closed = False
        self._rr = 0
        self.sent = 0
        self.inline_sends = 0
        self.proxy_sends = 0


class StreamConsumer:
    """Iterates a topic, yielding a lazy proxy per published item.

    Args:
        store: store the items' bulk data lives in (typically built from
            the same URL as the producer's).
        bus: event bus to subscribe on, or a bus URL.
        topic: topic to consume.
        owned: yield :class:`~repro.proxy.OwnedProxy` items — each consumed
            item is auto-evicted when its proxy is dropped, so backing
            stores do not fill under sustained traffic.
        lifetime: a :class:`~repro.store.lifetimes.Lifetime` every
            delivered key is additionally bound to (scope-level cleanup
            for items the consumer never acked).  Mutually exclusive with
            ``owned``.
        from_seq: consume from this topic sequence number, replaying
            whatever the bus retention still holds; ``None`` consumes only
            events published after subscribing.
        timeout: seconds to wait for the next event before iteration
            raises ``TimeoutError`` (``None`` = wait forever).
        prefetch: resolve up to this many upcoming items in the background
            while the caller processes the current one — store gets overlap
            with consumption, pipelining the data plane the same way
            ``resolve_async`` does for one-shot proxies (0 disables).

    Iterating yields one item per event: a :class:`~repro.proxy.Proxy`
    (or ``OwnedProxy``) for proxied items, or the deserialized object for
    inline events.  Iteration ends at an end-of-stream event.

    Passing ``group=...`` (with ``partitions=N``) returns a
    :class:`~repro.stream.groups.GroupConsumer` instead: a member of a
    consumer group with committed offsets and at-least-once redelivery.
    """

    def __new__(
        cls,
        store: 'Store | None' = None,
        bus: Any = None,
        topic: str | None = None,
        **kwargs: Any,
    ) -> Any:
        """Dispatch to a group consumer when ``group=`` is given."""
        if kwargs.get('group') is not None:
            from repro.stream.groups import GroupConsumer

            return GroupConsumer(store, bus, topic, **kwargs)
        return super().__new__(cls)

    def __init__(
        self,
        store: 'Store',
        bus: 'EventBus | str',
        topic: str,
        *,
        owned: bool = False,
        lifetime: 'Lifetime | None' = None,
        from_seq: int | None = None,
        timeout: float | None = DEFAULT_CONSUME_TIMEOUT,
        prefetch: int = 0,
        group: str | None = None,
        replicas: int = 1,
    ) -> None:
        assert group is None  # group=... dispatched to GroupConsumer in __new__
        if replicas != 1:
            raise ValueError(
                'replicas requires a consumer group (pass group=... and '
                'partitions=N); a plain consumer has no partition ring to '
                'fail over on',
            )
        if owned and lifetime is not None:
            raise ValueError(
                'owned=True and lifetime=... are mutually exclusive: owned '
                'items are evicted by their owner, not by a lifetime',
            )
        if prefetch < 0:
            raise ValueError('prefetch must be non-negative')
        self.store = store
        self.bus = _resolve_bus(bus)
        self.topic = topic
        self.owned = owned
        self.lifetime = lifetime
        self.timeout = timeout
        self.prefetch = prefetch
        self._from_seq = from_seq
        self._subscription: Any = None
        self._pending: list[StreamEvent] = []
        self._ready: deque[tuple[StreamEvent, Any]] = deque()
        self._unacked: list[Any] = []
        self._ended = False
        self._closed = False
        self.delivered = 0

    def __repr__(self) -> str:
        return (
            f'StreamConsumer(store={self.store.name!r}, topic={self.topic!r})'
        )

    # -- event plumbing ----------------------------------------------------- #
    def _ensure_subscribed(self) -> Any:
        if self._subscription is None:
            self._subscription = self.bus.subscribe(
                self.topic, from_seq=self._from_seq,
            )
        return self._subscription

    @property
    def lost(self) -> int:
        """Events that aged out of bus retention before this consumer saw them."""
        subscription = self._subscription
        return subscription.lost if subscription is not None else 0

    def _wait_for_events(self) -> None:
        """Block until at least one decoded event is pending (or stream end).

        Raises:
            TimeoutError: when nothing arrives within ``timeout`` seconds.
        """
        deadline = (
            None if self.timeout is None
            else time.monotonic() + self.timeout
        )
        while not self._pending:
            if self._closed:
                return
            remaining: float | None = None
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TimeoutError(
                        f'no event on topic {self.topic!r} within '
                        f'{self.timeout}s',
                    )
            # An empty batch is not necessarily a timeout (duplicate-only
            # pushes, a reconnect wake-up): keep polling until the deadline.
            batch = self._ensure_subscribed().next_batch(timeout=remaining)
            self._pending.extend(
                StreamEvent.decode(data, seq=seq) for seq, data in batch
            )

    def _item_for(self, event: StreamEvent) -> Any:
        """Materialize one event: proxy, owned proxy, or inline object."""
        if event.inline:
            assert event.payload is not None
            return self.store.deserializer(event.payload)
        if self.owned:
            return OwnedProxy._from_store(
                StoreFactory(event.key, self.store.config(), owned=True),
            )
        if self.lifetime is not None:
            self.lifetime.add_key(event.key, store=self.store)
        else:
            self._unacked.append(event.key)
        return Proxy(StoreFactory(event.key, self.store.config()))

    def _top_up_ready(self) -> None:
        """Materialize pending events into the delivery window.

        With ``prefetch > 0`` up to that many items beyond the next one are
        materialized early and their resolution kicked off in the
        background, so the store gets of upcoming items overlap with the
        caller's processing of the current one.
        """
        window = self.prefetch + 1
        while self._pending and len(self._ready) < window and not self._ended:
            event = self._pending.pop(0)
            if event.end:
                self._ended = True
                return
            item = self._item_for(event)
            if self.prefetch and not event.inline and not self.owned:
                resolve_async(item)
            self._ready.append((event, item))

    # -- iteration ---------------------------------------------------------- #
    def events(self) -> Iterator[tuple[StreamEvent, Any]]:
        """Yield ``(event, item)`` pairs — items plus their metadata/seq."""
        while True:
            self._top_up_ready()
            if self._ready:
                pair = self._ready.popleft()
                self.delivered += 1
                yield pair
                continue
            if self._ended or self._closed:
                return
            self._wait_for_events()

    def __iter__(self) -> Iterator[Any]:
        for _event, item in self.events():
            yield item

    # -- eviction ----------------------------------------------------------- #
    def ack(self) -> int:
        """Evict every item delivered since the last ack; returns the count.

        One ``evict_batch`` round trip per call (recorded under the
        store's single ``evict_batch`` metric).  Owned and lifetime-bound
        items are excluded — their eviction is governed by the owner drop
        or the lifetime close respectively.
        """
        keys, self._unacked = self._unacked, []
        if keys:
            self.store.evict_batch(keys)
        return len(keys)

    def close(self, *, evict_pending: bool = True) -> None:
        """Detach from the topic.

        Args:
            evict_pending: evict items delivered but never acked (plain
                mode only) — the default, so closing a consumer can never
                strand keys in the backing store.  Pass ``False`` to leave
                them stored (e.g. when another party will resolve them);
                the caller then owns their eviction.
        """
        if self._closed:
            return
        self._closed = True
        if self._subscription is not None:
            self._subscription.close()
            self._subscription = None
        if evict_pending:
            self.ack()

    def __enter__(self) -> 'StreamConsumer':
        return self

    def __exit__(self, exc_type: Any, exc_value: Any, traceback: Any) -> None:
        self.close()

    # -- pickling ----------------------------------------------------------- #
    def __getstate__(self) -> dict[str, Any]:
        if self.lifetime is not None:
            raise StoreError(
                'a consumer bound to a lifetime cannot be pickled (the '
                'lifetime and its eviction duty stay in this process); '
                'bind a lifetime in the target process instead',
            )
        subscription = self._subscription
        if self._ready:
            # Materialized-but-undelivered items replay on resume.
            position: int | None = self._ready[0][0].seq
        elif self._pending:
            # Decoded-but-undelivered events replay on resume.
            position = self._pending[0].seq
        elif subscription is not None:
            position = subscription.position
        else:
            position = self._from_seq
        return {
            'store_config': self.store.config(),
            'bus_config': self.bus.config(),
            'topic': self.topic,
            'owned': self.owned,
            'from_seq': position,
            'timeout': self.timeout,
            'prefetch': self.prefetch,
            # The clone inherits the eviction duty for everything this
            # consumer delivered but never acked — a pickle handoff must
            # not strand keys (evict_batch tolerates double eviction).
            'unacked': list(self._unacked),
        }

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__init__(  # type: ignore[misc]
            get_or_create_store(state['store_config']),
            bus_from_config(state['bus_config']),
            state['topic'],
            owned=state['owned'],
            from_seq=state['from_seq'],
            timeout=state['timeout'],
            prefetch=state.get('prefetch', 0),
        )
        self._unacked = list(state.get('unacked', []))
