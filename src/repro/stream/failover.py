"""Broker failover for partitioned streaming topics.

The PR 7 group layer placed every partition topic on exactly one broker:
a broker crash lost the topic's retention ring and stalled its
subscribers forever.  This module closes that gap with the same recipe
the DIM cluster uses for data keys:

* **Replicated retention** — publishers write to the partition's ring
  *primary* (which assigns sequence numbers), then mirror the events —
  with their explicit sequence numbers — onto the next ``replicas - 1``
  ring successors via ``REPL_PUBLISH``.  Every replica therefore holds
  the same ring with the same numbering.
* **Streak-based death detection** — every broker operation outcome is
  recorded into a shared :class:`~repro.cluster.membership.ClusterMembership`;
  a streak of :class:`~repro.exceptions.NodeUnavailableError` failures
  marks the broker dead, after which owner resolution simply skips it.
* **Cursor-preserving subscriber failover** — :class:`FailoverSubscription`
  wraps one transport subscription at a time; when the broker under it
  dies it re-subscribes on the next live ring owner *from its own
  cursor*.  Because replicas share the primary's numbering, the resume
  is exact: delivered/redelivered/lost accounting carries over without
  renumbering, and reconnects use the shared jittered backoff policy
  from :mod:`repro.faults.retry`.

The placement ring itself deliberately stays **static** over the full
broker fleet: failover changes which *owner in the list* serves a
partition, never the owner list itself, so every producer and consumer
process — each with its own independent failure detector — converges on
the same replica without coordination.
"""
from __future__ import annotations

from typing import Any
from typing import TYPE_CHECKING

from repro.exceptions import ConnectorError
from repro.exceptions import NodeUnavailableError
from repro.faults.retry import DEFAULT_RECONNECT_POLICY
from repro.faults.retry import RetryPolicy

if TYPE_CHECKING:  # pragma: no cover - import cycle avoidance
    from repro.stream.groups import PartitionRouter

__all__ = ['FailoverSubscription']


class FailoverSubscription:
    """A subscription that survives broker death by re-subscribing.

    Wraps one transport subscription (``bus.subscribe``) on the partition
    topic's current live ring owner.  When the underlying subscription
    fails with a :class:`~repro.exceptions.ConnectorError`, the failure is
    recorded into the router's failure detector (a streak of
    :class:`~repro.exceptions.NodeUnavailableError` marks the broker
    dead) and the subscription is rebuilt on the next live owner from the
    current cursor position — which is exact, because replicas mirror the
    primary's sequence numbering.

    Implements the :class:`~repro.stream.bus.Subscription` protocol, so
    group consumers use it interchangeably with a plain subscription.
    """

    def __init__(
        self,
        router: 'PartitionRouter',
        topic: str,
        *,
        from_seq: int | None = None,
        policy: RetryPolicy | None = None,
    ) -> None:
        self._router = router
        self.topic = topic
        self._policy = policy or DEFAULT_RECONNECT_POLICY
        self._sub: Any = None
        #: Ring node id of the broker currently serving the subscription.
        self.broker: str | None = None
        #: Lost counts harvested from subscriptions already failed over.
        self._lost_prior = 0
        self._position = int(from_seq) if from_seq is not None else 0
        #: How many times this subscription failed over to another broker.
        self.failovers = 0
        self._closed = False
        self._connect(from_seq)

    def __repr__(self) -> str:
        return (
            f'FailoverSubscription(topic={self.topic!r}, '
            f'broker={self.broker!r}, failovers={self.failovers})'
        )

    # -- connection management ---------------------------------------------- #
    def _connect(self, from_seq: int | None) -> None:
        """(Re)subscribe on the first live ring owner, with backoff.

        Each backoff attempt walks the owner list alive-first, so a dead
        primary costs one recorded failure before the replica answers.
        """
        last: Exception | None = None
        for _attempt in self._policy.attempts():
            if self._closed:
                return
            for node in self._router.ordered_owners(self.topic):
                bus = self._router.bus_of(node)
                try:
                    sub = bus.subscribe(self.topic, from_seq=from_seq)
                except ConnectorError as e:
                    self._router.record(
                        node,
                        ok=False,
                        unavailable=isinstance(e, NodeUnavailableError),
                        error=e,
                    )
                    last = e
                    continue
                self._router.record(node, ok=True)
                self._sub = sub
                self.broker = node
                return
        raise last if last is not None else NodeUnavailableError(
            f'no broker reachable for topic {self.topic!r}',
        )

    def _failover(self) -> None:
        """Swap to the next live owner, resuming from the current cursor."""
        old, self._sub = self._sub, None
        resume = self._position
        if old is not None:
            # Fold the dead subscription's accounting into ours before it
            # goes away: its cursor is where delivery stopped, its lost
            # count stays counted.
            resume = max(resume, int(getattr(old, 'position', resume)))
            self._lost_prior += int(getattr(old, 'lost', 0))
            try:
                old.close()
            except ConnectorError:  # the broker is gone; nothing to tell it
                pass
        self._position = resume
        self.failovers += 1
        self._connect(resume)

    # -- Subscription protocol ---------------------------------------------- #
    @property
    def position(self) -> int:
        """The next sequence number expected (cursor in primary numbering)."""
        if self._sub is not None:
            return int(getattr(self._sub, 'position', self._position))
        return self._position

    @property
    def lost(self) -> int:
        """Events lost to retention ageing, summed across failovers."""
        current = int(getattr(self._sub, 'lost', 0)) if self._sub is not None else 0
        return self._lost_prior + current

    def next_batch(self, timeout: float | None = None) -> list:
        """Return the next delivered ``(seq, payload)`` batch.

        A connector failure from the wrapped subscription triggers
        failover instead of propagating: the failure is recorded against
        the broker, the subscription is rebuilt on the next live owner,
        and an empty batch is returned for this slice (delivery resumes
        on the following poll).
        """
        if self._closed:
            return []
        if self._sub is None:
            self._connect(self._position)
        try:
            batch = self._sub.next_batch(timeout=timeout)
        except ConnectorError as e:
            if self.broker is not None:
                self._router.record(
                    self.broker,
                    ok=False,
                    unavailable=isinstance(e, NodeUnavailableError),
                    error=e,
                )
            self._failover()
            return []
        self._position = max(self._position, int(getattr(self._sub, 'position', 0)))
        return batch

    def close(self) -> None:
        """Close the wrapped subscription (idempotent)."""
        if self._closed:
            return
        self._closed = True
        sub, self._sub = self._sub, None
        if sub is not None:
            try:
                sub.close()
            except ConnectorError:  # the broker is gone; nothing to tell it
                pass

    def __enter__(self) -> 'FailoverSubscription':
        """Context-manager entry (closes the subscription on exit)."""
        return self

    def __exit__(self, exc_type: Any, exc_value: Any, traceback: Any) -> None:
        """Close on context exit."""
        self.close()
