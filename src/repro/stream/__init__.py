"""Streaming proxy channels: pub/sub streams of lazily-resolved objects.

This package extends the one-shot proxy model to *streams*: a
:class:`StreamProducer` puts each item's bulk data through a
:class:`~repro.store.Store` (the zero-copy path) and publishes a tiny
:class:`StreamEvent` on a topic; a :class:`StreamConsumer` iterates the
topic and yields lazy proxies whose data resolves straight from the store.
Event transports are pluggable by URL scheme: :class:`LocalEventBus` for
in-process pipelines and :class:`~repro.stream.kv.KVEventBus` for
multi-process streams brokered by the SimKV server (server-side fan-out,
ring-buffer retention, consumer catch-up).

Consumer groups (:class:`~repro.stream.groups.GroupConsumer`, built by
``StreamConsumer(group=..., partitions=N)``) add partitioned topics,
committed offsets, and at-least-once crash redelivery on top of either
transport.

See ``docs/ARCHITECTURE.md`` ("The stream path") for the data-flow
diagram and ``examples/streaming_pipeline.py`` for a runnable tour.
"""
from repro.stream.bus import EventBus
from repro.stream.bus import LocalEventBus
from repro.stream.bus import Subscription
from repro.stream.bus import broker_id
from repro.stream.bus import bus_from_config
from repro.stream.bus import event_bus_from_url
from repro.stream.bus import list_event_buses
from repro.stream.bus import register_event_bus
from repro.stream.channels import StreamConsumer
from repro.stream.channels import StreamProducer
from repro.stream.events import StreamEvent
from repro.stream.failover import FailoverSubscription
from repro.stream.groups import GroupConsumer
from repro.stream.groups import GroupCoordinator
from repro.stream.groups import PartitionRouter
from repro.stream.groups import partition_topics


def __getattr__(name: str):
    # KVEventBus/KVSubscription are re-exported lazily: importing them
    # eagerly would pull the whole kvserver/socket machinery into every
    # `import repro`, defeating the registry's deferred loading of the KV
    # transport (kv:// URLs import it on first use).
    if name in ('KVEventBus', 'KVSubscription'):
        import repro.stream.kv as kv

        return getattr(kv, name)
    raise AttributeError(f'module {__name__!r} has no attribute {name!r}')


__all__ = [
    'EventBus',
    'FailoverSubscription',
    'GroupConsumer',
    'GroupCoordinator',
    'KVEventBus',
    'KVSubscription',
    'LocalEventBus',
    'PartitionRouter',
    'StreamConsumer',
    'StreamEvent',
    'StreamProducer',
    'Subscription',
    'broker_id',
    'bus_from_config',
    'event_bus_from_url',
    'list_event_buses',
    'partition_topics',
    'register_event_bus',
]
