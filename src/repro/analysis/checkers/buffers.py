"""RP002 — a stored exception must not pin buffer exports via its traceback.

The PR 8 post-mortem (``docs/ARCHITECTURE.md``, failure modes): a
connection-failure exception stored on ``self`` kept its ``__traceback__``
alive, the traceback's frames pinned wire-segment ``memoryview``\\ s with
live pickle-5 buffer exports, and the GC's ``tp_clear`` on the cycle
raised ``BufferError`` *inside the interpreter* — a hard crash, not a
Python-level error.  The fix is mechanical: strip the traceback before
the exception outlives its handler.

This rule flags an ``except ... as e`` handler that assigns ``e`` to a
long-lived location — an attribute (``self._error = e``), a container
reachable through an attribute (``self._errors[k] = e``), or a
``nonlocal``/``global`` variable — unless the stored value is
``e.with_traceback(None)`` or the handler cleared ``e.__traceback__``
first.  Locals and plain local containers are not flagged: they die with
the frame.
"""
from __future__ import annotations

import ast
from typing import Iterable
from typing import Iterator

from repro.analysis.core import Checker
from repro.analysis.core import Finding
from repro.analysis.core import Module
from repro.analysis.core import register_checker

__all__ = ['ExceptionPinsBuffers']


def _is_stripped_value(node: ast.expr, exc_name: str) -> bool:
    """``e.with_traceback(None)`` (possibly chained) is a safe store."""
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == 'with_traceback'
        and isinstance(node.func.value, ast.Name)
        and node.func.value.id == exc_name
        and len(node.args) == 1
        and isinstance(node.args[0], ast.Constant)
        and node.args[0].value is None
    )


def _clears_traceback(stmt: ast.stmt, exc_name: str) -> bool:
    """``e.__traceback__ = None`` anywhere in ``stmt``."""
    for node in ast.walk(stmt):
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Attribute)
            and node.targets[0].attr == '__traceback__'
            and isinstance(node.targets[0].value, ast.Name)
            and node.targets[0].value.id == exc_name
        ):
            return True
    return False


def _walk_shallow(func: ast.AST) -> Iterator[ast.AST]:
    """Walk ``func`` without descending into nested function bodies.

    Each handler must be attributed to its *innermost* function (whose
    ``nonlocal`` declarations govern escape), and visited exactly once.
    """
    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            stack.extend(ast.iter_child_nodes(node))


def _escaping_names(func: ast.AST) -> set[str]:
    """Names declared ``nonlocal``/``global`` in the enclosing function."""
    names: set[str] = set()
    for node in _walk_shallow(func):
        if isinstance(node, (ast.Nonlocal, ast.Global)):
            names.update(node.names)
    return names


def _target_outlives_frame(target: ast.expr, escaping: set[str]) -> str | None:
    """Describe the long-lived store target, or ``None`` for frame-locals."""
    if isinstance(target, ast.Attribute):
        return f'attribute {ast.unparse(target)}'
    if isinstance(target, ast.Subscript):
        base = target.value
        while isinstance(base, ast.Subscript):
            base = base.value
        if isinstance(base, ast.Attribute):
            return f'container {ast.unparse(target.value)}'
        if isinstance(base, ast.Name) and base.id in escaping:
            return f'closure container {base.id}'
        return None
    if isinstance(target, ast.Name) and target.id in escaping:
        return f'closure variable {target.id}'
    return None


@register_checker
class ExceptionPinsBuffers(Checker):
    """Flag caught exceptions stored without stripping ``__traceback__``."""

    rule = 'RP002'
    name = 'exception-pins-buffers'
    description = (
        'a caught exception stored on self/closure keeps its traceback, '
        'pinning frames and live pickle-5 buffer exports (the PR 8 '
        'segfault class); store e.with_traceback(None) instead'
    )

    def check_module(self, module: Module) -> Iterable[Finding]:
        """Check every ``except ... as e`` handler in ``module``."""
        for func in ast.walk(module.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            escaping = _escaping_names(func)
            for node in _walk_shallow(func):
                if isinstance(node, ast.ExceptHandler) and node.name:
                    yield from self._check_handler(module, node, escaping)

    def _check_handler(
        self,
        module: Module,
        handler: ast.ExceptHandler,
        escaping: set[str],
    ) -> Iterator[Finding]:
        exc = handler.name
        assert exc is not None
        cleared = False
        for stmt in handler.body:
            if _clears_traceback(stmt, exc):
                cleared = True
            if cleared:
                continue
            for node in ast.walk(stmt):
                if not isinstance(node, ast.Assign):
                    continue
                value = node.value
                if _is_stripped_value(value, exc):
                    continue  # stored pre-stripped — safe
                if not (isinstance(value, ast.Name) and value.id == exc):
                    continue
                for target in node.targets:
                    described = _target_outlives_frame(target, escaping)
                    if described is not None:
                        yield module.finding(
                            self.rule,
                            f'caught exception {exc!r} stored on {described} '
                            'without stripping its traceback — pins frames '
                            'and buffer exports; use '
                            f'{exc}.with_traceback(None)',
                            node,
                        )
