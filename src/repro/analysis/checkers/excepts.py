"""RP004 — transport/stream paths must not swallow exceptions silently.

A ``except Exception: pass`` in a transport retry loop hides real
failures: the cluster client keeps hedging against a dead node, the
stream reader drops a record, and nothing in the metrics or logs ever
says so.  The convention this rule enforces is that a *broad* handler
(bare ``except``, ``except Exception``, ``except BaseException``, or a
tuple containing one of those) in a transport path must do at least one
of:

* re-raise (``raise`` / ``raise ConnectorError(...) from e`` — typed
  escalation is the preferred form),
* record a metric (a call to ``record``/``_record``/``count``/
  ``_count``/``_bump`` anywhere in the handler), or
* increment a counter (an augmented assignment such as
  ``self._faults += 1``).

Handlers that intentionally discard (best-effort teardown, error
already captured elsewhere) carry ``# repro: ignore[RP004] - reason``.
"""
from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.core import Checker
from repro.analysis.core import Finding
from repro.analysis.core import Module
from repro.analysis.core import register_checker

__all__ = ['SilentBroadExcept']

_BROAD = frozenset({'Exception', 'BaseException'})
_METRIC_CALLS = frozenset({'record', '_record', 'count', '_count', '_bump'})


def _is_broad(exc_type: ast.expr | None) -> bool:
    """Bare except, Exception/BaseException, or a tuple containing one."""
    if exc_type is None:
        return True
    if isinstance(exc_type, ast.Tuple):
        return any(_is_broad(elt) for elt in exc_type.elts)
    if isinstance(exc_type, ast.Name):
        return exc_type.id in _BROAD
    if isinstance(exc_type, ast.Attribute):  # e.g. builtins.Exception
        return exc_type.attr in _BROAD
    return False


def _handler_accounts_for_failure(handler: ast.ExceptHandler) -> bool:
    """True when the handler re-raises, records a metric, or counts."""
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.AugAssign):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            name = (
                func.attr if isinstance(func, ast.Attribute)
                else func.id if isinstance(func, ast.Name) else None
            )
            if name in _METRIC_CALLS:
                return True
    return False


@register_checker
class SilentBroadExcept(Checker):
    """Flag broad excepts in transport paths that hide the failure."""

    rule = 'RP004'
    name = 'silent-except'
    description = (
        'broad except in a transport/stream path that neither re-raises, '
        'records a metric, nor increments a counter — failures vanish'
    )
    paths = (
        'src/repro/kvserver',
        'src/repro/stream',
        'src/repro/cluster',
        'src/repro/dim',
        'src/repro/connectors',
        'src/repro/endpoint',
    )

    def check_module(self, module: Module) -> Iterable[Finding]:
        """Flag broad handlers in ``module`` that hide the failure."""
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not _is_broad(node.type):
                continue
            if _handler_accounts_for_failure(node):
                continue
            caught = ast.unparse(node.type) if node.type else 'everything'
            yield module.finding(
                self.rule,
                f'broad except ({caught}) swallows the failure: add a '
                'typed re-raise, record a metric, or bump a counter '
                '(or suppress with a reason if discarding is intentional)',
                node,
            )
