"""Built-in project-specific lint rules (self-registering on import).

| Rule  | Module | Invariant |
|-------|--------|-----------|
| RP001 | :mod:`~repro.analysis.checkers.eventloop` | no blocking calls reachable from the KVServer event loop |
| RP002 | :mod:`~repro.analysis.checkers.buffers` | stored exceptions must strip ``__traceback__`` (buffer pinning) |
| RP003 | :mod:`~repro.analysis.checkers.locks` | the static lock-acquisition graph must be acyclic |
| RP004 | :mod:`~repro.analysis.checkers.excepts` | no silent broad excepts in transport/stream paths |
| RP005 | :mod:`~repro.analysis.checkers.metricsdoc` | metric literals and the docs/API.md registry must agree |
| RP006 | :mod:`~repro.analysis.checkers.threads` | daemon threads must be joined on some close/stop path |
"""
from __future__ import annotations

from repro.analysis.checkers import buffers  # noqa: F401
from repro.analysis.checkers import eventloop  # noqa: F401
from repro.analysis.checkers import excepts  # noqa: F401
from repro.analysis.checkers import locks  # noqa: F401
from repro.analysis.checkers import metricsdoc  # noqa: F401
from repro.analysis.checkers import threads  # noqa: F401
