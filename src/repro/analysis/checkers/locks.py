"""RP003 — the static lock-acquisition graph must be acyclic.

Builds a lock-order graph from ``with self._lock:``-style acquisitions:
a lock held lexically when another is acquired adds a directed edge
*held → acquired*.  Locks are identified per class attribute
(``Class._lock``) or module-level name, so two methods of the same class
nesting the same pair in opposite orders — or two classes acquiring each
other's locks in opposite orders through one level of ``self.*()``
calls — produce a cycle, which this rule reports.

A self-edge (re-acquiring the *same* non-reentrant lock while holding
it) is reported too when the lock is statically known to be a plain
``threading.Lock`` — that is not a race but an instant deadlock.

This is the static half of the lock-order story; the runtime witness
(:mod:`repro.analysis.witness`) covers acquisition orders the AST cannot
see (cross-object, cross-module, and data-dependent ones).
"""
from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Iterable
from typing import Iterator

from repro.analysis.core import Checker
from repro.analysis.core import Finding
from repro.analysis.core import Module
from repro.analysis.core import Project
from repro.analysis.core import register_checker

__all__ = ['LockOrderCycle']

_LOCKISH = re.compile(r'(?i)(lock|cond|mutex)')


@dataclass(frozen=True)
class _Edge:
    """One observed *held → acquired* pair with its source location."""

    held: str
    acquired: str
    relpath: str
    line: int
    context: str


def _lock_label(node: ast.expr, class_name: str | None) -> str | None:
    """Stable label for a lock expression, or ``None`` if not lock-like."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == 'self'
        and _LOCKISH.search(node.attr)
    ):
        owner = class_name or '<module>'
        return f'{owner}.{node.attr}'
    if isinstance(node, ast.Name) and _LOCKISH.search(node.id):
        return node.id
    return None


def _lock_kinds(cls: ast.ClassDef) -> dict[str, str]:
    """Map ``self.<attr>`` lock names to ``Lock``/``RLock``/``Condition``."""
    kinds: dict[str, str] = {}
    for node in ast.walk(cls):
        if not isinstance(node, ast.Assign) or not isinstance(node.value, ast.Call):
            continue
        func = node.value.func
        ctor = (
            func.attr if isinstance(func, ast.Attribute)
            else func.id if isinstance(func, ast.Name) else None
        )
        if ctor not in ('Lock', 'RLock', 'Condition'):
            continue
        for target in node.targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == 'self'
            ):
                kinds[f'{cls.name}.{target.attr}'] = ctor
    return kinds


class _FunctionScanner:
    """Collect nesting edges and top-level acquisitions for one function."""

    def __init__(self, class_name: str | None, module: Module) -> None:
        self.class_name = class_name
        self.module = module
        self.edges: list[_Edge] = []
        #: Every lock this function acquires anywhere (for one-hop calls).
        self.acquires: set[str] = set()
        #: ``self.<method>()`` calls made while holding each lock.
        self.calls_under: list[tuple[str, str, int]] = []

    def scan(self, func: ast.FunctionDef) -> None:
        self._visit_body(func.body, held=())

    def _visit_body(self, body: list[ast.stmt], held: tuple[str, ...]) -> None:
        for stmt in body:
            self._visit_stmt(stmt, held)

    def _visit_stmt(self, stmt: ast.stmt, held: tuple[str, ...]) -> None:
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            inner = held
            for item in stmt.items:
                label = _lock_label(item.context_expr, self.class_name)
                if label is not None:
                    self.acquires.add(label)
                    for holder in inner:
                        self._edge(holder, label, item.context_expr)
                    inner = inner + (label,)
            self._visit_body(stmt.body, inner)
            return
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Nested function bodies run later, not under the held locks.
            return
        for node in ast.walk(stmt):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == 'self'
                and held
            ):
                for holder in held:
                    self.calls_under.append(
                        (holder, node.func.attr, node.lineno),
                    )
        for child_body in (
            getattr(stmt, 'body', None),
            getattr(stmt, 'orelse', None),
            getattr(stmt, 'finalbody', None),
        ):
            if isinstance(child_body, list) and child_body and (
                isinstance(child_body[0], ast.stmt)
            ):
                self._visit_body(child_body, held)
        for handler in getattr(stmt, 'handlers', ()) or ():
            self._visit_body(handler.body, held)

    def _edge(self, held: str, acquired: str, node: ast.expr) -> None:
        self.edges.append(_Edge(
            held=held,
            acquired=acquired,
            relpath=self.module.relpath,
            line=node.lineno,
            context=self.module.line_text(node.lineno),
        ))


@register_checker
class LockOrderCycle(Checker):
    """Flag cycles in the static lock-acquisition graph."""

    rule = 'RP003'
    name = 'lock-order'
    description = (
        'two code paths acquire the same locks in opposite orders '
        '(potential deadlock), from with-statement nesting and one-hop '
        'self.*() calls'
    )

    def __init__(self) -> None:
        self._edges: list[_Edge] = []
        self._kinds: dict[str, str] = {}

    def check_module(self, module: Module) -> Iterable[Finding]:
        """Accumulate acquisition edges from ``module`` (reported later)."""
        for node in module.tree.body:
            if isinstance(node, ast.ClassDef):
                self._kinds.update(_lock_kinds(node))
                self._scan_class(module, node)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scanner = _FunctionScanner(None, module)
                scanner.scan(node)
                self._edges.extend(scanner.edges)
        return ()

    def _scan_class(self, module: Module, cls: ast.ClassDef) -> None:
        scanners: dict[str, _FunctionScanner] = {}
        for node in cls.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scanner = _FunctionScanner(cls.name, module)
                scanner.scan(node)
                scanners[node.name] = scanner
                self._edges.extend(scanner.edges)
        # One-hop interprocedural edges: a self.m() call made while
        # holding L adds L -> (every lock m acquires).
        for scanner in scanners.values():
            for held, callee, line in scanner.calls_under:
                target = scanners.get(callee)
                if target is None:
                    continue
                for acquired in sorted(target.acquires):
                    if acquired != held:
                        self._edges.append(_Edge(
                            held=held,
                            acquired=acquired,
                            relpath=module.relpath,
                            line=line,
                            context=module.line_text(line),
                        ))

    def finish(self, project: Project) -> Iterable[Finding]:
        """Report self-deadlocks and cycles over the accumulated graph."""
        yield from self._self_deadlocks()
        yield from self._cycles()
        self._edges = []
        self._kinds = {}

    def _self_deadlocks(self) -> Iterator[Finding]:
        for edge in self._edges:
            if edge.held == edge.acquired and (
                self._kinds.get(edge.held) == 'Lock'
            ):
                yield Finding(
                    rule=self.rule,
                    message=(
                        f'non-reentrant lock {edge.held} re-acquired while '
                        'already held — instant self-deadlock'
                    ),
                    path=edge.relpath,
                    line=edge.line,
                    context=edge.context,
                )

    def _cycles(self) -> Iterator[Finding]:
        graph: dict[str, set[str]] = {}
        by_pair: dict[tuple[str, str], _Edge] = {}
        for edge in self._edges:
            if edge.held == edge.acquired:
                continue
            graph.setdefault(edge.held, set()).add(edge.acquired)
            by_pair.setdefault((edge.held, edge.acquired), edge)
        for component in _strongly_connected(graph):
            if len(component) < 2:
                continue
            ordered = sorted(component)
            cycle = ' -> '.join(ordered + [ordered[0]])
            # Anchor one finding at each edge inside the cycle so every
            # participating site is visible (and suppressible) on its line.
            for (held, acquired), edge in sorted(by_pair.items()):
                if held in component and acquired in component:
                    yield Finding(
                        rule=self.rule,
                        message=(
                            f'lock-order cycle {cycle}: this path acquires '
                            f'{acquired} while holding {held}, another path '
                            'nests them in the opposite order'
                        ),
                        path=edge.relpath,
                        line=edge.line,
                        context=edge.context,
                    )


def _strongly_connected(graph: dict[str, set[str]]) -> list[set[str]]:
    """Tarjan's SCC, iterative (lint input sizes are tiny but unbounded)."""
    index: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    components: list[set[str]] = []
    counter = [0]
    nodes = set(graph) | {n for targets in graph.values() for n in targets}

    def strongconnect(root: str) -> None:
        work = [(root, iter(sorted(graph.get(root, ()))))]
        index[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for succ in successors:
                if succ not in index:
                    index[succ] = lowlink[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(sorted(graph.get(succ, ())))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component: set[str] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                components.append(component)

    for node in sorted(nodes):
        if node not in index:
            strongconnect(node)
    return components
