"""RP005 — code metric names and the docs/API.md registry must agree.

``docs/API.md`` carries the authoritative metric-name table ("Store
metric names").  Operators build dashboards from that table; a metric
recorded in code but absent from the table is invisible to them, and a
documented metric nothing records is a dashboard that silently flatlines.
This rule checks **both directions**:

* every string literal (or f-string template) passed as the first
  argument of a ``record``/``_record``/``_bump`` call must match a
  table row, and
* every table row must match at least one call site.

Wildcards line up on both sides: a docs placeholder such as
``cluster.node.<id>.ok`` and an f-string such as
``f'cluster.{counter}'`` both normalize to ``*`` segments, and two
names *overlap* when either one's pattern matches the other.
``_bump(name)`` is the cluster client's counter helper and implies the
``cluster.`` prefix.  Calls whose first argument is not a string (e.g.
``OperationStats.record(elapsed, nbytes)``) are not metric names and
are ignored.
"""
from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Iterable

from repro.analysis.core import Checker
from repro.analysis.core import Finding
from repro.analysis.core import Module
from repro.analysis.core import Project
from repro.analysis.core import register_checker

__all__ = ['MetricNameRegistry']

_RECORD_CALLS = frozenset({'record', '_record'})
_BUMP_CALLS = frozenset({'_bump'})
_DOCS_TABLE_HEADING = '## Store metric names'
_BACKTICKED = re.compile(r'`([^`]+)`')


@dataclass(frozen=True)
class _MetricUse:
    """One metric-name literal at a call site (normalized to ``*``)."""

    pattern: str
    relpath: str
    line: int
    context: str


def _normalize_fstring(node: ast.JoinedStr) -> str:
    """``f'cluster.{counter}'`` → ``cluster.*``."""
    parts: list[str] = []
    for value in node.values:
        if isinstance(value, ast.Constant):
            parts.append(str(value.value))
        else:
            parts.append('*')
    return ''.join(parts)


def _overlap(a: str, b: str) -> bool:
    """True when patterns ``a`` and ``b`` can name the same metric."""
    def regex(pattern: str) -> re.Pattern[str]:
        return re.compile(
            '.+'.join(re.escape(part) for part in pattern.split('*')),
        )

    def concrete(pattern: str) -> str:
        return pattern.replace('*', 'x')

    return bool(
        regex(a).fullmatch(concrete(b)) or regex(b).fullmatch(concrete(a)),
    )


def _documented_names(text: str) -> list[tuple[str, int, str]]:
    """``(normalized_name, line_number, line_text)`` per docs table entry."""
    names: list[tuple[str, int, str]] = []
    in_section = False
    for lineno, line in enumerate(text.splitlines(), start=1):
        if line.startswith('## '):
            in_section = line.strip() == _DOCS_TABLE_HEADING
            continue
        if not in_section or not line.lstrip().startswith('|'):
            continue
        first_cell = line.split('|')[1] if line.count('|') >= 2 else ''
        if set(first_cell.strip()) <= {'-', ':', ' '}:
            continue  # the |---| separator row
        for raw in _BACKTICKED.findall(first_cell):
            normalized = re.sub(r'<[^>]*>', '*', raw.strip())
            if normalized:
                names.append((normalized, lineno, line))
    return names


class MetricNameRegistry(Checker):
    """Cross-check metric literals against the docs/API.md table."""

    rule = 'RP005'
    name = 'metric-name-registry'
    description = (
        'metric names recorded in code and the docs/API.md "Store metric '
        'names" table must match in both directions'
    )
    #: Path (relative to the project root) of the registry document.
    docs_path = 'docs/API.md'

    def __init__(self) -> None:
        self._uses: list[_MetricUse] = []

    def applies_to(self, module: Module) -> bool:
        """Everything except the analyzer itself (its examples aren't metrics)."""
        return not module.relpath.startswith('src/repro/analysis')

    def check_module(self, module: Module) -> Iterable[Finding]:
        """Collect metric-name literals from ``module`` (reported later)."""
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call) or not node.args:
                continue
            func = node.func
            name = (
                func.attr if isinstance(func, ast.Attribute)
                else func.id if isinstance(func, ast.Name) else None
            )
            if name in _RECORD_CALLS:
                prefix = ''
            elif name in _BUMP_CALLS:
                prefix = 'cluster.'
            else:
                continue
            first = node.args[0]
            if isinstance(first, ast.Constant) and isinstance(first.value, str):
                pattern = prefix + first.value
            elif isinstance(first, ast.JoinedStr):
                pattern = prefix + _normalize_fstring(first)
            else:
                continue
            self._uses.append(_MetricUse(
                pattern=pattern,
                relpath=module.relpath,
                line=node.lineno,
                context=module.line_text(node.lineno),
            ))
        return ()

    def finish(self, project: Project) -> Iterable[Finding]:
        """Cross-check collected literals against the docs table."""
        uses, self._uses = self._uses, []
        docs_file = project.root / self.docs_path
        if not docs_file.exists():
            yield Finding(
                rule=self.rule,
                message=f'metric registry document {self.docs_path} not found',
                path=self.docs_path,
                line=1,
            )
            return
        text = docs_file.read_text()
        documented = _documented_names(text)

        for use in uses:
            if not any(_overlap(use.pattern, doc) for doc, _, _ in documented):
                yield Finding(
                    rule=self.rule,
                    message=(
                        f'metric {use.pattern!r} is recorded here but missing '
                        f'from the {self.docs_path} metric table'
                    ),
                    path=use.relpath,
                    line=use.line,
                    context=use.context,
                )
        for doc, lineno, line in documented:
            # A code-side wildcard (an f-string template) only vouches
            # for docs rows that are themselves templates — otherwise
            # the `_bump` implementation's f'cluster.{...}' would match
            # every concrete cluster.* row and dead rows would survive.
            vouchers = [
                use for use in uses
                if '*' not in use.pattern or '*' in doc
            ]
            if not any(_overlap(use.pattern, doc) for use in vouchers):
                yield Finding(
                    rule=self.rule,
                    message=(
                        f'documented metric {doc!r} is never recorded by any '
                        'code path — remove the row or restore the metric'
                    ),
                    path=self.docs_path,
                    line=lineno,
                    context=line,
                )


register_checker(MetricNameRegistry)
