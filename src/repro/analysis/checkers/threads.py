"""RP006 — every daemon thread needs a join on some close/stop path.

``daemon=True`` keeps a stuck background thread from blocking
interpreter exit — it does **not** license leaking the thread.  An
unjoined daemon worker keeps running through test teardown, touches
freed sockets and stores, and turns one test's failure into the next
test's flake.  The convention: every ``threading.Thread(daemon=True)``
the project starts must be joined on *some* path — ``stop()``,
``close()``, or the end of the function that spawned it.

The join does not have to name the attribute directly.  These all count
(they are the shapes the codebase actually uses)::

    self._thread.join(timeout=5)
    thread = self._thread; thread.join()                  # alias
    reader, self._reader = self._reader, None             # swap-then-join
    thread = getattr(self, '_async_thread', None)         # getattr alias
    for worker in self._workers: worker.join()            # collection

A thread handed to the caller (``return t``) transfers ownership and is
not flagged at the creation site.
"""
from __future__ import annotations

import ast
from typing import Iterable
from typing import Iterator

from repro.analysis.core import Checker
from repro.analysis.core import Finding
from repro.analysis.core import Module
from repro.analysis.core import register_checker

__all__ = ['DaemonThreadJoin']


def _is_daemon_thread_call(node: ast.expr) -> bool:
    """``Thread(..., daemon=True)`` / ``threading.Thread(..., daemon=True)``."""
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    name = (
        func.attr if isinstance(func, ast.Attribute)
        else func.id if isinstance(func, ast.Name) else None
    )
    if name != 'Thread':
        return False
    return any(
        kw.arg == 'daemon'
        and isinstance(kw.value, ast.Constant)
        and kw.value.value is True
        for kw in node.keywords
    )


def _self_attr(node: ast.expr) -> str | None:
    """``self.<attr>`` → attr name, including ``getattr(self, 'attr', ...)``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == 'self'
    ):
        return node.attr
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == 'getattr'
        and len(node.args) >= 2
        and isinstance(node.args[0], ast.Name)
        and node.args[0].id == 'self'
        and isinstance(node.args[1], ast.Constant)
        and isinstance(node.args[1].value, str)
    ):
        return node.args[1].value
    return None


def _attrs_in(node: ast.expr) -> set[str]:
    """Every ``self.<attr>`` (or getattr form) mentioned inside ``node``."""
    found: set[str] = set()
    for child in ast.walk(node):
        attr = _self_attr(child)
        if attr is not None:
            found.add(attr)
    return found


def _assignment_pairs(stmt: ast.Assign) -> Iterator[tuple[ast.expr, ast.expr]]:
    """``(target, value)`` pairs, unzipping tuple-to-tuple assignments."""
    for target in stmt.targets:
        if (
            isinstance(target, ast.Tuple)
            and isinstance(stmt.value, ast.Tuple)
            and len(target.elts) == len(stmt.value.elts)
        ):
            yield from zip(target.elts, stmt.value.elts)
        else:
            yield target, stmt.value


def _joined_attrs(func: ast.AST) -> set[str]:
    """Attrs of ``self`` that some alias chain ``.join()``s in ``func``.

    Runs an alias fixpoint: a local name assigned from an expression
    mentioning ``self.<attr>`` (directly, via ``getattr``, tuple
    unpacking, ``list(...)`` wrapping) — or iterated from one in a
    ``for`` loop — carries that attr.  A ``.join()`` on the attr or any
    carrier marks the attr joined.
    """
    aliases: dict[str, set[str]] = {}

    def carried(expr: ast.expr) -> set[str]:
        attrs = set(_attrs_in(expr))
        for child in ast.walk(expr):
            if isinstance(child, ast.Name) and child.id in aliases:
                attrs |= aliases[child.id]
        return attrs

    changed = True
    while changed:
        changed = False
        for node in ast.walk(func):
            pairs: Iterator[tuple[ast.expr, ast.expr]]
            if isinstance(node, ast.Assign):
                pairs = _assignment_pairs(node)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                pairs = iter([(node.target, node.iter)])
            else:
                continue
            for target, value in pairs:
                if not isinstance(target, ast.Name):
                    continue
                attrs = carried(value)
                if attrs - aliases.get(target.id, set()):
                    aliases.setdefault(target.id, set()).update(attrs)
                    changed = True

    joined: set[str] = set()
    for node in ast.walk(func):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == 'join'
        ):
            continue
        receiver = node.func.value
        attr = _self_attr(receiver)
        if attr is not None:
            joined.add(attr)
        elif isinstance(receiver, ast.Name):
            joined |= aliases.get(receiver.id, set())
    return joined


def _local_joins(func: ast.AST, names: set[str]) -> set[str]:
    """Local thread names ``.join()``ed (or returned) inside ``func``."""
    settled: set[str] = set()
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == 'join'
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id in names
        ):
            settled.add(node.func.value.id)
        if (
            isinstance(node, ast.Return)
            and isinstance(node.value, ast.Name)
            and node.value.id in names
        ):
            settled.add(node.value.id)
    return settled


@register_checker
class DaemonThreadJoin(Checker):
    """Flag daemon threads no close/stop path ever joins."""

    rule = 'RP006'
    name = 'daemon-thread-join'
    description = (
        'a daemon=True thread is started but never joined on any '
        'close/stop path — it outlives its owner and races teardown'
    )

    def check_module(self, module: Module) -> Iterable[Finding]:
        """Check daemon-thread creations in every class and function."""
        top_level_funcs = [
            node for node in module.tree.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        for cls in module.tree.body:
            if isinstance(cls, ast.ClassDef):
                yield from self._check_class(module, cls)
        for func in top_level_funcs:
            yield from self._check_function(module, func)

    def _check_class(
        self, module: Module, cls: ast.ClassDef,
    ) -> Iterator[Finding]:
        methods = [
            node for node in cls.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        joined_attrs: set[str] = set()
        for method in methods:
            joined_attrs |= _joined_attrs(method)

        for method in methods:
            # Pass 1: locals holding daemon threads, and the self attrs
            # they reach (direct assign, append, list-comp, re-assign).
            locals_holding: set[str] = set()
            bound_attrs: dict[ast.Assign, set[str]] = {}
            creations: list[tuple[ast.expr, set[str], str | None]] = []
            for node in ast.walk(method):
                if isinstance(node, ast.Assign):
                    for target, value in _assignment_pairs(node):
                        if _creates_daemon_thread(value):
                            attrs: set[str] = set()
                            local: str | None = None
                            attr = _self_attr(target)
                            if attr is not None:
                                attrs.add(attr)
                            elif isinstance(target, ast.Name):
                                local = target.id
                                locals_holding.add(local)
                            creations.append((value, attrs, local))
                            bound_attrs[node] = attrs
            # Locals escaping into attributes: self.x.append(t) or
            # self.x = t_list.
            for node in ast.walk(method):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in ('append', 'add')
                    and node.args
                    and isinstance(node.args[0], ast.Name)
                    and node.args[0].id in locals_holding
                ):
                    attr = _self_attr(node.func.value)
                    if attr is not None:
                        for _, attrs, local in creations:
                            if local == node.args[0].id:
                                attrs.add(attr)
                if isinstance(node, ast.Assign):
                    for target, value in _assignment_pairs(node):
                        attr = _self_attr(target)
                        if attr is None:
                            continue
                        value_names = {
                            n.id for n in ast.walk(value)
                            if isinstance(n, ast.Name)
                        }
                        for _, attrs, local in creations:
                            if local is not None and local in value_names:
                                attrs.add(attr)

            settled_locals = _local_joins(method, locals_holding)
            for call, attrs, local in creations:
                if attrs & joined_attrs:
                    continue
                if local is not None and local in settled_locals:
                    continue
                if attrs:
                    where = ' / '.join(f'self.{a}' for a in sorted(attrs))
                    detail = f'stored on {where} but never joined'
                else:
                    detail = (
                        'fire-and-forget (no binding reaches a join on any '
                        'close/stop path)'
                    )
                yield module.finding(
                    self.rule,
                    f'daemon thread in {cls.name}.{method.name} is {detail} '
                    '— join it from close()/stop() so teardown is ordered',
                    call,
                )

    def _check_function(
        self, module: Module, func: ast.FunctionDef,
    ) -> Iterator[Finding]:
        locals_holding: set[str] = set()
        creations: list[tuple[ast.expr, str | None]] = []
        for node in ast.walk(func):
            if isinstance(node, ast.Assign):
                for target, value in _assignment_pairs(node):
                    if _creates_daemon_thread(value):
                        local = (
                            target.id if isinstance(target, ast.Name) else None
                        )
                        if local is not None:
                            locals_holding.add(local)
                        creations.append((value, local))
        settled = _local_joins(func, locals_holding)
        for call, local in creations:
            if local is not None and local in settled:
                continue
            yield module.finding(
                self.rule,
                f'daemon thread in {func.name}() is never joined '
                '(and not handed to a caller) — it outlives the function',
                call,
            )


def _creates_daemon_thread(value: ast.expr) -> bool:
    """Direct call, or a list/comprehension of daemon-thread calls."""
    if _is_daemon_thread_call(value):
        return True
    if isinstance(value, (ast.List, ast.Tuple)):
        return any(_is_daemon_thread_call(elt) for elt in value.elts)
    if isinstance(value, ast.ListComp):
        return _is_daemon_thread_call(value.elt)
    return False
