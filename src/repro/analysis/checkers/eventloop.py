"""RP001 — blocking calls must not be reachable from the KVServer event loop.

The SimKV server serves every connection from one ``selectors`` event
loop (:class:`repro.kvserver.server.KVServer`).  Anything that blocks on
that thread — a ``time.sleep``, a blocking socket call, an indefinite
lock ``acquire()``, a ``select()`` with no timeout — stalls *all*
clients at once and disables the dead-subscriber reaper.  This rule
computes the set of methods reachable (via ``self.*()`` calls) from the
loop entry points and flags blocking primitives found there.

``with self._lock:`` context-manager acquisitions are deliberately
*not* flagged: the server's convention is that ``with``-scoped critical
sections are short and bounded, whereas an explicit ``.acquire()``
without a timeout encodes an unbounded wait.
"""
from __future__ import annotations

import ast
from typing import Iterable
from typing import Iterator

from repro.analysis.core import Checker
from repro.analysis.core import Finding
from repro.analysis.core import Module
from repro.analysis.core import register_checker

__all__ = ['BlockingCallInEventLoop']

#: Attribute-call names that block the calling thread unconditionally.
_BLOCKING_ATTR_CALLS = frozenset({'sendall', 'makefile', 'getaddrinfo'})


def _method_map(cls: ast.ClassDef) -> dict[str, ast.FunctionDef]:
    return {
        node.name: node
        for node in cls.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


def _self_calls(func: ast.FunctionDef) -> Iterator[str]:
    """Names of ``self.<method>()`` calls made anywhere in ``func``."""
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == 'self'
        ):
            yield node.func.attr


def _has_timeout(call: ast.Call, *, positional_slot: int) -> bool:
    """True when ``call`` passes a timeout (keyword or positional slot)."""
    if any(kw.arg == 'timeout' for kw in call.keywords):
        return True
    return len(call.args) > positional_slot


def _acquire_is_nonblocking(call: ast.Call) -> bool:
    """``acquire(False)`` / ``acquire(blocking=False)`` never block."""
    for kw in call.keywords:
        if kw.arg == 'blocking':
            return isinstance(kw.value, ast.Constant) and kw.value.value is False
    if call.args:
        first = call.args[0]
        return isinstance(first, ast.Constant) and first.value is False
    return False


@register_checker
class BlockingCallInEventLoop(Checker):
    """Flag blocking primitives reachable from the broker event loop."""

    rule = 'RP001'
    name = 'blocking-call-in-event-loop'
    description = (
        'time.sleep, blocking socket ops, indefinite lock acquire(), or '
        'select() without a timeout reachable from the KVServer event loop'
    )
    #: Classes whose ``self``-call graph is traversed, and the methods
    #: the traversal starts from (the loop itself plus request handlers).
    event_loop_classes: tuple[str, ...] = ('KVServer',)
    entry_methods: tuple[str, ...] = ('_serve_loop', '_handle')

    def check_module(self, module: Module) -> Iterable[Finding]:
        """Scan every event-loop class defined in ``module``."""
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.ClassDef)
                and node.name in self.event_loop_classes
            ):
                yield from self._check_class(module, node)

    def _check_class(
        self, module: Module, cls: ast.ClassDef,
    ) -> Iterator[Finding]:
        methods = _method_map(cls)
        reachable: set[str] = set()
        frontier = [name for name in self.entry_methods if name in methods]
        while frontier:
            name = frontier.pop()
            if name in reachable:
                continue
            reachable.add(name)
            frontier.extend(
                callee for callee in _self_calls(methods[name])
                if callee in methods
            )
        for name in sorted(reachable):
            yield from self._check_method(module, cls.name, methods[name])

    def _check_method(
        self, module: Module, class_name: str, func: ast.FunctionDef,
    ) -> Iterator[Finding]:
        where = f'{class_name}.{func.name} (reachable from the event loop)'
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            target = node.func
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
            ):
                base, attr = target.value.id, target.attr
                if base == 'time' and attr == 'sleep':
                    yield module.finding(
                        self.rule, f'time.sleep() in {where}', node,
                    )
                    continue
                if base == 'socket' and attr == 'create_connection':
                    yield module.finding(
                        self.rule,
                        f'blocking socket.create_connection() in {where}',
                        node,
                    )
                    continue
            if isinstance(target, ast.Attribute):
                attr = target.attr
                if attr in _BLOCKING_ATTR_CALLS:
                    yield module.finding(
                        self.rule, f'blocking .{attr}() call in {where}', node,
                    )
                elif attr == 'acquire':
                    if not _has_timeout(node, positional_slot=1) and (
                        not _acquire_is_nonblocking(node)
                    ):
                        yield module.finding(
                            self.rule,
                            f'lock .acquire() without a timeout in {where}',
                            node,
                        )
                elif attr == 'select':
                    if not _has_timeout(node, positional_slot=0):
                        yield module.finding(
                            self.rule,
                            f'.select() without a timeout in {where} '
                            '(blocks the loop tick forever)',
                            node,
                        )
