"""Runtime lock-order witness: observe acquisitions, catch inversions.

The static rule (RP003) sees only lexical ``with self._lock:`` nesting.
This module catches what the AST cannot: the *dynamic* lock-acquisition
order across objects, modules, and threads.  While installed, every
``threading.Lock()`` / ``threading.RLock()`` the program creates is
wrapped; the witness records, per thread, which locks are held when
another is acquired.  Each ordered pair *(held → acquired)* becomes an
edge in a global order graph.  When a thread is **about to block** on a
lock B while holding A and some earlier acquisition established the
edge *B → A*, that is an order inversion — the classic two-thread
deadlock shape — and the witness raises :class:`WitnessViolation`
*before* blocking, so the test fails deterministically instead of
hanging.

Design notes:

* The inversion check runs **before** the real acquire.  Checking after
  would never fire on an actual deadlock (the thread would already be
  blocked).
* Reentrant re-acquisition of a lock already held by this thread is
  skipped — an RLock re-entry neither blocks nor orders anything new.
* ``acquire(blocking=False)`` skips the check: a try-lock never blocks,
  which is precisely the legitimate way to break an ordering cycle.
  Successful try-acquires still record edges (holding a try-acquired
  lock while blocking elsewhere *can* deadlock).
* A thread holding no other lock takes a fast path that never touches
  the witness's internal mutex.
* Edges are keyed by ``id()`` of the wrapper; a ``weakref.finalize``
  purges a lock's edges when it is collected, so id reuse cannot
  fabricate phantom edges.
* The witness's own bookkeeping uses a *real* (unwrapped) lock captured
  at import time, held only for dict operations — never while acquiring
  a user lock — so the witness cannot introduce deadlocks of its own.

Installed by the test-suite fixture when ``REPRO_WITNESS=1`` (see
``tests/conftest.py``) and by the dedicated CI witness job.
"""
from __future__ import annotations

import threading
import traceback
import weakref
from typing import Any

__all__ = [
    'WitnessLock',
    'WitnessViolation',
    'clear_violations',
    'install',
    'installed',
    'uninstall',
    'violations',
]

#: Real constructors, captured before any patching can replace them.
_REAL_LOCK = threading.Lock
_REAL_RLOCK = threading.RLock


class WitnessViolation(RuntimeError):
    """A thread was about to acquire locks in an inverted order."""


def _site(skip: int = 0) -> str:
    """``file:line`` of the interesting caller frame (witness frames cut)."""
    stack = traceback.extract_stack()
    # Drop this helper, its caller inside the witness, and `skip` more.
    trimmed = stack[:-(2 + skip)] if len(stack) > 2 + skip else stack
    for frame in reversed(trimmed):
        if 'analysis/witness' not in frame.filename.replace('\\', '/'):
            return f'{frame.filename}:{frame.lineno}'
    return '<unknown>'


class _Core:
    """Global order graph + per-thread held stacks + violation log."""

    def __init__(self) -> None:
        self._mutex = _REAL_LOCK()
        #: ``(held_id, acquired_id) -> description`` of where the edge
        #: was first observed.
        self._edges: dict[tuple[int, int], str] = {}
        self._names: dict[int, str] = {}
        self._held = threading.local()
        self.violations: list[str] = []
        self.raise_on_violation = True

    # -- held-stack bookkeeping (thread-local, no mutex needed) ---------- #
    def held_stack(self) -> list[int]:
        stack = getattr(self._held, 'stack', None)
        if stack is None:
            stack = self._held.stack = []
        return stack

    # -- registration ---------------------------------------------------- #
    def register(self, lock_id: int, name: str) -> None:
        with self._mutex:
            self._names[lock_id] = name

    def purge(self, lock_id: int) -> None:
        """Forget a collected lock (defends against ``id()`` reuse)."""
        with self._mutex:
            self._names.pop(lock_id, None)
            for pair in [p for p in self._edges if lock_id in p]:
                del self._edges[pair]

    # -- the witness protocol -------------------------------------------- #
    def check(self, held: list[int], acquiring: int) -> None:
        """Raise/record if acquiring now inverts an observed order."""
        with self._mutex:
            for held_id in held:
                reverse = self._edges.get((acquiring, held_id))
                if reverse is None:
                    continue
                name_a = self._names.get(held_id, f'lock-{held_id:#x}')
                name_b = self._names.get(acquiring, f'lock-{acquiring:#x}')
                message = (
                    f'lock-order inversion: thread {threading.current_thread().name!r} '
                    f'holds {name_a} and is about to block on {name_b} '
                    f'at {_site(1)}, but the opposite order '
                    f'({name_b} then {name_a}) was previously observed '
                    f'at {reverse}'
                )
                self.violations.append(message)
                if self.raise_on_violation:
                    raise WitnessViolation(message)

    def record(self, held: list[int], acquired: int) -> None:
        """Add ``held → acquired`` edges after a successful acquire."""
        if not held:
            return
        site = _site(1)
        with self._mutex:
            for held_id in held:
                self._edges.setdefault((held_id, acquired), site)

    def reset(self) -> None:
        with self._mutex:
            self._edges.clear()
            self.violations.clear()


_CORE = _Core()


class WitnessLock:
    """Order-tracking wrapper around one real Lock/RLock instance."""

    def __init__(self, inner: Any, name: str | None = None) -> None:
        self._inner = inner
        self._name = name or f'lock@{_site()}'
        _CORE.register(id(self), self._name)
        weakref.finalize(self, _CORE.purge, id(self))

    # -- core lock protocol ---------------------------------------------- #
    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        """Check order (blocking acquires only), acquire, record edges."""
        me = id(self)
        held = _CORE.held_stack()
        reentrant = me in held
        if blocking and held and not reentrant:
            _CORE.check(list(held), me)
        if timeout == -1:
            ok = self._inner.acquire(blocking)
        else:
            ok = self._inner.acquire(blocking, timeout)
        if ok:
            if held and not reentrant:
                _CORE.record(list(held), me)
            held.append(me)
        return ok

    def release(self) -> None:
        """Pop this lock from the thread's held stack and release it."""
        held = _CORE.held_stack()
        me = id(self)
        if me in held:
            # Remove the most recent acquisition (RLocks may hold several).
            for index in range(len(held) - 1, -1, -1):
                if held[index] == me:
                    del held[index]
                    break
        self._inner.release()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    def locked(self) -> bool:
        """True while the wrapped lock is held (any thread)."""
        return self._inner.locked()

    # -- Condition integration ------------------------------------------- #
    # threading.Condition probes these on its lock and uses them to
    # fully release / restore an RLock around wait().  Delegate, keeping
    # the held stack honest so edges seen after a wait() are correct.
    def _release_save(self) -> Any:
        held = _CORE.held_stack()
        me = id(self)
        count = held.count(me)
        if count:
            held[:] = [x for x in held if x != me]
        if hasattr(self._inner, '_release_save'):
            return (count, self._inner._release_save())
        self._inner.release()
        return (count, None)

    def _acquire_restore(self, state: Any) -> None:
        count, inner_state = state
        if hasattr(self._inner, '_acquire_restore'):
            self._inner._acquire_restore(inner_state)
        else:
            self._inner.acquire()
        _CORE.held_stack().extend([id(self)] * max(count, 1))

    def _is_owned(self) -> bool:
        if hasattr(self._inner, '_is_owned'):
            return self._inner._is_owned()
        # Real Locks have no owner notion; mirror Condition's fallback.
        if self._inner.acquire(False):
            self._inner.release()
            return False
        return True

    def __getattr__(self, name: str) -> Any:
        # Everything not intercepted above (e.g. the stdlib's
        # RLock._recursion_count, _at_fork_reinit) hits the real lock.
        return getattr(self._inner, name)

    def __repr__(self) -> str:
        return f'<WitnessLock {self._name} wrapping {self._inner!r}>'


def _make_lock() -> WitnessLock:
    return WitnessLock(_REAL_LOCK())


def _make_rlock() -> WitnessLock:
    return WitnessLock(_REAL_RLOCK())


def install(*, raise_on_violation: bool = True) -> None:
    """Patch ``threading.Lock``/``threading.RLock`` with witness wrappers.

    Idempotent.  Only locks created *after* installation are tracked.
    ``raise_on_violation=False`` records violations (see
    :func:`violations`) without raising, for observe-only runs.
    """
    _CORE.reset()
    _CORE.raise_on_violation = raise_on_violation
    threading.Lock = _make_lock  # type: ignore[assignment]
    threading.RLock = _make_rlock  # type: ignore[assignment]


def uninstall() -> None:
    """Restore the real lock constructors (existing wrappers keep working)."""
    threading.Lock = _REAL_LOCK  # type: ignore[assignment]
    threading.RLock = _REAL_RLOCK  # type: ignore[assignment]


def installed() -> bool:
    """True while the witness constructors are patched in."""
    return threading.Lock is _make_lock


def violations() -> list[str]:
    """Messages for every inversion observed since the last reset."""
    return list(_CORE.violations)


def clear_violations() -> None:
    """Drop recorded violations (the order graph is kept)."""
    _CORE.violations.clear()
