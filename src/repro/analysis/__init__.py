"""Project-specific static analysis and runtime concurrency witnesses.

The codebase carries the full concurrency surface of the paper's
production system — an event-loop broker, pipelined reader threads,
background rebalancers and heartbeats, and zero-copy pickle-5 buffer
exports.  The invariants that keep that surface correct (no blocking
calls on the event loop, no stored tracebacks pinning buffer exports, a
consistent lock order, no silently swallowed transport errors) have each
been paid for in segfaults or review rounds; this package encodes them
machine-checkably.

Two halves:

* **Static lint** (``python -m repro.analysis``): an AST-based checker
  framework with a pluggable rule registry (``RP001``–``RP006``),
  per-line ``# repro: ignore[RULE]`` suppressions, and a committed
  baseline file for grandfathered findings.  See :mod:`repro.analysis.core`
  and the rule modules under :mod:`repro.analysis.checkers`.
* **Runtime witness** (:mod:`repro.analysis.witness`): an opt-in
  ``threading`` lock wrapper that records per-thread lock-acquisition
  order and raises on observed order inversions — a lightweight
  lock-order race detector covering what the AST cannot see.  The test
  suite installs it when ``REPRO_WITNESS=1``.

``docs/ANALYSIS.md`` describes each rule, its rationale, and the
suppression/baseline workflow.
"""
from __future__ import annotations

from repro.analysis.core import AnalysisReport
from repro.analysis.core import Checker
from repro.analysis.core import Finding
from repro.analysis.core import all_checkers
from repro.analysis.core import load_baseline
from repro.analysis.core import register_checker
from repro.analysis.core import run_analysis

__all__ = [
    'AnalysisReport',
    'Checker',
    'Finding',
    'all_checkers',
    'load_baseline',
    'register_checker',
    'run_analysis',
]
