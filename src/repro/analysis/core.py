"""The checker framework: findings, registry, suppressions, baseline, runner.

A :class:`Checker` inspects parsed modules and yields :class:`Finding`\\ s.
Checkers register themselves in a process-global registry via
:func:`register_checker`; :func:`run_analysis` walks a source tree, parses
every ``*.py`` file once, runs each selected checker, and filters the raw
findings through two project conventions:

* **Suppressions** — a ``# repro: ignore[RP004]`` comment (optionally
  ``# repro: ignore[RP001,RP003] - reason``) on the flagged line — or on
  a standalone comment line directly above it — silences named rules
  there.
* **Baseline** — a committed JSON file of finding *fingerprints*
  (rule + file + source-line text, deliberately line-number free so
  unrelated edits do not invalidate it) grandfathers pre-existing
  findings; ``--update-baseline`` regenerates it.

Everything here is dependency-free standard library so the analyzer can
run in any environment the test suite runs in.
"""
from __future__ import annotations

import ast
import hashlib
import json
import re
import tokenize
from dataclasses import dataclass
from dataclasses import field
from pathlib import Path
from typing import Callable
from typing import Iterable
from typing import Iterator
from typing import Sequence

__all__ = [
    'AnalysisReport',
    'Checker',
    'Finding',
    'Module',
    'Project',
    'all_checkers',
    'load_baseline',
    'register_checker',
    'run_analysis',
]

#: ``# repro: ignore[RP001]`` / ``# repro: ignore[RP001,RP004] - reason``.
_SUPPRESSION = re.compile(
    r'#\s*repro:\s*ignore\[(?P<rules>[A-Z0-9,\s*]+)\]',
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location."""

    rule: str
    message: str
    path: str
    line: int
    col: int = 0
    context: str = ''

    def fingerprint(self) -> str:
        """Location-stable identity used by the baseline file.

        Hashes the rule, the file, and the *text* of the flagged line —
        not its number — so findings survive unrelated edits above them.
        """
        payload = f'{self.rule}|{self.path}|{self.context.strip()}'
        return hashlib.sha1(payload.encode()).hexdigest()[:16]

    def render(self) -> str:
        """Human-readable one-line form (``path:line:col RP00x message``)."""
        return f'{self.path}:{self.line}:{self.col} {self.rule} {self.message}'


class Module:
    """One parsed source file handed to every checker."""

    def __init__(self, path: Path, relpath: str, source: str) -> None:
        self.path = path
        self.relpath = relpath
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=relpath)
        self.suppressions = _collect_suppressions(source)

    def line_text(self, lineno: int) -> str:
        """The 1-indexed source line (empty string when out of range)."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ''

    def finding(
        self,
        rule: str,
        message: str,
        node: ast.AST | int,
        col: int | None = None,
    ) -> Finding:
        """Build a :class:`Finding` anchored at ``node`` (or a line number)."""
        if isinstance(node, int):
            line, column = node, col or 0
        else:
            line = getattr(node, 'lineno', 1)
            column = col if col is not None else getattr(node, 'col_offset', 0)
        return Finding(
            rule=rule,
            message=message,
            path=self.relpath,
            line=line,
            col=column,
            context=self.line_text(line),
        )

    def is_suppressed(self, rule: str, line: int) -> bool:
        """True when ``rule`` is suppressed on ``line`` (or ``*`` is)."""
        rules = self.suppressions.get(line)
        return rules is not None and (rule in rules or '*' in rules)


def _collect_suppressions(source: str) -> dict[int, set[str]]:
    """Map line number -> rules suppressed there, from real comments only.

    Tokenizing (rather than regexing raw lines) means a suppression
    marker inside a string literal is not honoured — only comments count.
    """
    suppressions: dict[int, set[str]] = {}
    raw_lines = source.splitlines()
    lines = iter(source.splitlines(keepends=True))
    try:
        for token in tokenize.generate_tokens(lambda: next(lines, '')):
            if token.type != tokenize.COMMENT:
                continue
            match = _SUPPRESSION.search(token.string)
            if match is None:
                continue
            rules = {r.strip() for r in match.group('rules').split(',') if r.strip()}
            lineno = token.start[0]
            # A standalone comment line suppresses the next *code* line —
            # the readable form when the suppression carries a reason
            # (possibly continued across several comment lines).
            if raw_lines[lineno - 1].lstrip().startswith('#'):
                lineno += 1
                while (
                    lineno <= len(raw_lines)
                    and raw_lines[lineno - 1].lstrip().startswith('#')
                ):
                    lineno += 1
            suppressions.setdefault(lineno, set()).update(rules)
    except tokenize.TokenError:  # pragma: no cover - unterminated source
        pass
    return suppressions


class Project:
    """All parsed modules of one analysis run, plus resolved paths."""

    def __init__(self, root: Path, modules: Sequence[Module]) -> None:
        self.root = root
        self.modules = list(modules)

    def __iter__(self) -> Iterator[Module]:
        return iter(self.modules)


class Checker:
    """Base class for one lint rule.

    Subclasses set :attr:`rule`/:attr:`name`/:attr:`description`, narrow
    :attr:`paths` when the rule only applies to part of the tree, and
    implement :meth:`check_module` (per file) and/or :meth:`finish`
    (cross-file, called once after every module was visited).
    """

    rule: str = 'RP000'
    name: str = 'unnamed'
    description: str = ''
    #: Repo-relative path prefixes the rule applies to (``None`` = all).
    paths: tuple[str, ...] | None = None

    def applies_to(self, module: Module) -> bool:
        """True when ``module`` falls under this rule's path scope."""
        if self.paths is None:
            return True
        return any(module.relpath.startswith(prefix) for prefix in self.paths)

    def check_module(self, module: Module) -> Iterable[Finding]:
        """Yield findings for one parsed module."""
        return ()

    def finish(self, project: Project) -> Iterable[Finding]:
        """Yield cross-module findings once every module was visited."""
        return ()


_REGISTRY: dict[str, type[Checker]] = {}


def register_checker(cls: type[Checker]) -> type[Checker]:
    """Class decorator adding a checker to the default rule set."""
    existing = _REGISTRY.get(cls.rule)
    if existing is not None and existing is not cls:
        raise ValueError(f'rule {cls.rule} already registered by {existing!r}')
    _REGISTRY[cls.rule] = cls
    return cls


def all_checkers() -> dict[str, type[Checker]]:
    """The registered rule set (imports the built-in rule modules)."""
    import repro.analysis.checkers  # noqa: F401  (self-registration)

    return dict(sorted(_REGISTRY.items()))


@dataclass
class AnalysisReport:
    """The outcome of one :func:`run_analysis` call."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    rules_run: tuple[str, ...] = ()

    @property
    def clean(self) -> bool:
        """True when no finding survived suppression and baseline filters."""
        return not self.findings

    def counts_by_rule(self) -> dict[str, int]:
        """Surviving finding count per rule id."""
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return counts

    def to_json(self) -> dict:
        """JSON-friendly structure for ``--json`` output and tooling."""
        return {
            'files_checked': self.files_checked,
            'rules_run': list(self.rules_run),
            'counts': self.counts_by_rule(),
            'suppressed': len(self.suppressed),
            'baselined': len(self.baselined),
            'findings': [
                {
                    'rule': f.rule,
                    'message': f.message,
                    'path': f.path,
                    'line': f.line,
                    'col': f.col,
                    'context': f.context.strip(),
                    'fingerprint': f.fingerprint(),
                }
                for f in self.findings
            ],
        }


def load_baseline(path: Path) -> dict[str, int]:
    """Read a baseline file into ``{fingerprint: allowed_count}``.

    Counts matter: if a file legitimately gains a *second* identical
    finding (same rule, same line text) the new instance is reported
    rather than silently absorbed by the old entry.
    """
    if not path.exists():
        return {}
    data = json.loads(path.read_text())
    counts: dict[str, int] = {}
    for entry in data.get('findings', []):
        counts[entry['fingerprint']] = counts.get(entry['fingerprint'], 0) + 1
    return counts


def save_baseline(path: Path, findings: Sequence[Finding]) -> None:
    """Write ``findings`` as the new grandfathered baseline."""
    payload = {
        'comment': (
            'Grandfathered repro.analysis findings. Entries are keyed by a '
            'line-number-free fingerprint (rule + file + source line text); '
            'regenerate with: python -m repro.analysis --update-baseline'
        ),
        'findings': [
            {
                'fingerprint': f.fingerprint(),
                'rule': f.rule,
                'path': f.path,
                'context': f.context.strip(),
            }
            for f in sorted(findings, key=lambda f: (f.path, f.line, f.rule))
        ],
    }
    path.write_text(json.dumps(payload, indent=2) + '\n')


def _iter_sources(root: Path, paths: Sequence[Path]) -> Iterator[Path]:
    for base in paths:
        if base.is_file():
            yield base
        else:
            yield from sorted(base.rglob('*.py'))


def run_analysis(
    root: Path,
    paths: Sequence[Path] | None = None,
    *,
    select: Sequence[str] | None = None,
    baseline: dict[str, int] | None = None,
    checker_factory: Callable[[type[Checker]], Checker] | None = None,
) -> AnalysisReport:
    """Run the (selected) rule set over ``paths`` and filter the findings.

    Args:
        root: repository root; findings carry paths relative to it and
            path-scoped rules match against those relative paths.
        paths: files or directories to analyze (default: ``root/src/repro``).
        select: rule ids to run (default: every registered rule).
        baseline: ``{fingerprint: count}`` of grandfathered findings
            (see :func:`load_baseline`).
        checker_factory: hook for constructing checkers with custom
            configuration (used by tests; default constructs with no args).
    """
    root = root.resolve()
    if paths is None:
        paths = [root / 'src' / 'repro']
    registry = all_checkers()
    if select is not None:
        unknown = sorted(set(select) - set(registry))
        if unknown:
            raise ValueError(f'unknown rule id(s): {", ".join(unknown)}')
        registry = {rule: registry[rule] for rule in select}
    make = checker_factory or (lambda cls: cls())
    checkers = [make(cls) for cls in registry.values()]

    modules = []
    for source_path in _iter_sources(root, paths):
        try:
            relpath = source_path.resolve().relative_to(root).as_posix()
        except ValueError:
            relpath = source_path.as_posix()
        modules.append(Module(source_path, relpath, source_path.read_text()))
    project = Project(root, modules)

    raw: list[Finding] = []
    for checker in checkers:
        for module in project:
            if checker.applies_to(module):
                raw.extend(checker.check_module(module))
        raw.extend(checker.finish(project))
    raw.sort(key=lambda f: (f.path, f.line, f.col, f.rule))

    by_path = {module.relpath: module for module in project}
    report = AnalysisReport(
        files_checked=len(modules),
        rules_run=tuple(registry),
    )
    remaining = dict(baseline or {})
    for finding in raw:
        module = by_path.get(finding.path)
        if module is not None and module.is_suppressed(finding.rule, finding.line):
            report.suppressed.append(finding)
            continue
        fp = finding.fingerprint()
        if remaining.get(fp, 0) > 0:
            remaining[fp] -= 1
            report.baselined.append(finding)
            continue
        report.findings.append(finding)
    return report
