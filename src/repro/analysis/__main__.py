"""Command-line entry point: ``python -m repro.analysis``.

Exit status: 0 when clean (or not ``--strict``), 1 when ``--strict``
and findings survived suppressions + baseline, 2 on usage errors.
"""
from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from repro.analysis.core import all_checkers
from repro.analysis.core import load_baseline
from repro.analysis.core import run_analysis
from repro.analysis.core import save_baseline

#: Default baseline location, relative to ``--root``.
BASELINE_NAME = '.repro-analysis-baseline.json'


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog='python -m repro.analysis',
        description=(
            'Project-specific static analysis for the repro codebase '
            '(blocking event-loop calls, traceback-pinned buffers, '
            'lock-order cycles, silent excepts, metric-registry drift, '
            'unjoined daemon threads).'
        ),
    )
    parser.add_argument(
        'paths', nargs='*', type=Path,
        help='files or directories to analyze (default: <root>/src/repro)',
    )
    parser.add_argument(
        '--root', type=Path, default=None,
        help='repository root (default: auto-detected from this package)',
    )
    parser.add_argument(
        '--select', default=None, metavar='RULES',
        help='comma-separated rule ids to run (e.g. RP001,RP004)',
    )
    parser.add_argument(
        '--baseline', type=Path, default=None, metavar='FILE',
        help=f'baseline file (default: <root>/{BASELINE_NAME})',
    )
    parser.add_argument(
        '--update-baseline', action='store_true',
        help='rewrite the baseline file to grandfather current findings',
    )
    parser.add_argument(
        '--no-baseline', action='store_true',
        help='report baselined findings too (audit mode)',
    )
    parser.add_argument(
        '--strict', action='store_true',
        help='exit 1 when any non-baselined finding survives',
    )
    parser.add_argument(
        '--json', action='store_true', dest='as_json',
        help='emit a machine-readable JSON report instead of text',
    )
    parser.add_argument(
        '--list-rules', action='store_true',
        help='print the registered rule set and exit',
    )
    return parser


def _detect_root() -> Path:
    """The repository root: the ancestor holding ``src/repro``."""
    here = Path(__file__).resolve()
    for ancestor in here.parents:
        if (ancestor / 'src' / 'repro').is_dir():
            return ancestor
    return Path.cwd()


def main(argv: Sequence[str] | None = None) -> int:
    """Run the analyzer; returns the process exit status."""
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule, cls in all_checkers().items():
            print(f'{rule}  {cls.name}: {cls.description}')
        return 0

    root = (args.root or _detect_root()).resolve()
    baseline_path = args.baseline or (root / BASELINE_NAME)
    select = (
        [r.strip() for r in args.select.split(',') if r.strip()]
        if args.select else None
    )
    paths = args.paths or None

    if args.update_baseline:
        try:
            report = run_analysis(root, paths, select=select, baseline=None)
        except (ValueError, SyntaxError) as exc:
            print(f'error: {exc}', file=sys.stderr)
            return 2
        save_baseline(baseline_path, report.findings)
        print(
            f'baseline written: {len(report.findings)} finding(s) '
            f'grandfathered in {baseline_path}',
        )
        return 0

    baseline = None if args.no_baseline else load_baseline(baseline_path)
    try:
        report = run_analysis(root, paths, select=select, baseline=baseline)
    except (ValueError, SyntaxError) as exc:
        print(f'error: {exc}', file=sys.stderr)
        return 2

    if args.as_json:
        print(json.dumps(report.to_json(), indent=2))
    else:
        for finding in report.findings:
            print(finding.render())
        counts = report.counts_by_rule()
        summary = ', '.join(f'{r}: {n}' for r, n in sorted(counts.items()))
        print(
            f'{len(report.findings)} finding(s) '
            f'({summary or "clean"}) — {report.files_checked} file(s), '
            f'{len(report.suppressed)} suppressed, '
            f'{len(report.baselined)} baselined',
        )
    if args.strict and not report.clean:
        return 1
    return 0


if __name__ == '__main__':
    sys.exit(main())
