"""N-way replicated reads and writes over the consistent-hash ring.

:class:`ClusterClient` is the generic replication engine shared by the DIM
connectors (per-node storage servers) and the clustered Redis connector
(multiple SimKV servers).  It is parameterized by a *backend factory* that
returns a :class:`NodeBackend` — the per-node transport — so the engine
itself contains no socket code.

Semantics:

* **put** writes the value to all ``replicas`` owners in parallel.  A
  partial failure first evicts the replicas that *did* land (a failed put
  must never leak broker memory — the orphan-replica guarantee), then
  either retries against the recomputed ring (the failure was a node
  crash, now excluded from placement) or re-raises (the request itself was
  bad).
* **get** reads the primary, and *hedges*: if the primary has not answered
  within ``hedge_threshold`` seconds, the same read is issued to the
  second replica and whichever returns first wins — slow nodes cost one
  threshold, not a timeout.  Unavailable replicas trigger failover to the
  next owner, and **read-repair** writes the recovered value back to any
  live owner that was found missing it.
* Every per-node outcome feeds :class:`ClusterMembership` health, so
  crashes discovered by ordinary traffic remove the node from placement
  without any dedicated failure detector.
"""
from __future__ import annotations

import threading
from concurrent.futures import FIRST_COMPLETED
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import wait
from dataclasses import dataclass
from time import perf_counter
from typing import Any
from typing import Callable
from typing import Dict
from typing import List
from typing import Protocol
from typing import Sequence
from typing import Tuple
from typing import runtime_checkable

from repro.cluster.membership import ClusterMembership
from repro.exceptions import NodeUnavailableError

__all__ = [
    'ClusterClient',
    'ClusterStats',
    'DEFAULT_HEDGE_THRESHOLD',
    'NodeBackend',
]

#: Seconds the primary replica may stay silent before the same read is
#: hedged to the second replica.  50 ms is far above a healthy intra-site
#: round trip but far below any connect/retry timeout.
DEFAULT_HEDGE_THRESHOLD = 0.05

#: Upper bound on threads used for one client's replicated fan-out.
_MAX_PARALLEL = 8


@runtime_checkable
class NodeBackend(Protocol):
    """Per-node transport the replication engine drives.

    Implementations raise :class:`NodeUnavailableError` when the node
    cannot be reached, which is the engine's failover/crash signal.
    """

    def put(self, key: str, value: Any) -> None:
        """Store ``value`` under ``key`` on this node."""
        ...

    def put_batch(self, items: Sequence[Tuple[str, Any]]) -> None:
        """Store several pairs in one round trip."""
        ...

    def get(self, key: str) -> Any | None:
        """Fetch ``key`` (``None`` when missing)."""
        ...

    def get_batch(self, keys: Sequence[str]) -> List[Any]:
        """Fetch several keys in one round trip."""
        ...

    def exists(self, key: str) -> bool:
        """Whether ``key`` is stored on this node."""
        ...

    def evict(self, key: str) -> None:
        """Remove ``key`` (no-op when missing)."""
        ...

    def evict_batch(self, keys: Sequence[str]) -> None:
        """Remove several keys in one round trip."""
        ...

    def keys(self) -> List[str]:
        """Every key stored on this node (rebalancer enumeration)."""
        ...


@dataclass
class ClusterStats:
    """Counters describing the replication engine's self-healing work."""

    hedged_reads: int = 0
    hedge_wins: int = 0
    failovers: int = 0
    read_repairs: int = 0
    orphans_evicted: int = 0
    orphan_evict_failures: int = 0
    put_retries: int = 0
    repair_failures: int = 0

    def as_dict(self) -> dict[str, int]:
        """JSON-friendly snapshot."""
        return {
            'hedged_reads': self.hedged_reads,
            'hedge_wins': self.hedge_wins,
            'failovers': self.failovers,
            'read_repairs': self.read_repairs,
            'orphans_evicted': self.orphans_evicted,
            'orphan_evict_failures': self.orphan_evict_failures,
            'put_retries': self.put_retries,
            'repair_failures': self.repair_failures,
        }


class ClusterClient:
    """Replicated operations against the membership's current ring.

    Args:
        backend_factory: returns the :class:`NodeBackend` for a node id
            (called once per node; results are cached).
        membership: the cluster membership supplying the placement ring.
        replicas: copies written per key (1 = no replication).
        hedge_threshold: seconds of primary silence before a read is
            hedged to the second replica (``0`` disables hedging).
        read_repair: write recovered values back to owners missing them.
        put_retries: times a put is re-placed against the updated ring
            after a replica-unavailable failure.
    """

    def __init__(
        self,
        backend_factory: Callable[[str], NodeBackend],
        membership: ClusterMembership,
        *,
        replicas: int = 2,
        hedge_threshold: float = DEFAULT_HEDGE_THRESHOLD,
        read_repair: bool = True,
        put_retries: int = 2,
    ) -> None:
        if replicas < 1:
            raise ValueError('replicas must be at least 1')
        self.membership = membership
        self.replicas = replicas
        self.hedge_threshold = hedge_threshold
        self.read_repair = read_repair
        self.put_retries = put_retries
        self.stats = ClusterStats()
        self._backend_factory = backend_factory
        self._backends: Dict[str, NodeBackend] = {}
        self._lock = threading.Lock()
        self._executor: ThreadPoolExecutor | None = None
        self._metrics: Any = None

    # -- plumbing ----------------------------------------------------------- #
    def backend(self, node_id: str) -> NodeBackend:
        """The (cached) transport for ``node_id``."""
        with self._lock:
            backend = self._backends.get(node_id)
            if backend is None:
                backend = self._backends[node_id] = self._backend_factory(node_id)
            return backend

    def _pool(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=_MAX_PARALLEL,
                    thread_name_prefix='cluster-io',
                )
            return self._executor

    def bind_metrics(self, metrics: Any) -> None:
        """Thread engine events and per-node health into ``StoreMetrics``."""
        self._metrics = metrics
        self.membership.bind_metrics(metrics)

    def _bump(self, counter: str, amount: int = 1, elapsed: float = 0.0) -> None:
        with self._lock:
            setattr(self.stats, counter, getattr(self.stats, counter) + amount)
        metrics = self._metrics
        if metrics is not None:
            metrics.record(f'cluster.{counter}', elapsed)

    def _call(self, node_id: str, op: Callable[[NodeBackend], Any]) -> Any:
        """Run one backend operation, folding the outcome into health."""
        backend = self.backend(node_id)
        start = perf_counter()
        try:
            result = op(backend)
        except NodeUnavailableError as e:
            self.membership.record(
                node_id, ok=False, unavailable=True, error=e,
            )
            raise
        except Exception as e:  # noqa: BLE001 - health bookkeeping only
            self.membership.record(node_id, ok=False, error=e)
            raise
        self.membership.record(node_id, ok=True, elapsed=perf_counter() - start)
        return result

    def owners(self, key: str) -> Tuple[str, ...]:
        """Current owners of ``key`` (primary first)."""
        return self.membership.ring.owners(key, self.replicas)

    # -- writes -------------------------------------------------------------- #
    def put(self, key: str, value: Any) -> Tuple[str, ...]:
        """Write ``value`` to all owners of ``key``; returns where it landed.

        Self-healing: a replica that turns out to be dead is excluded from
        the ring by its own failure, the copies that landed are evicted
        (never leak a failed put), and the write is re-placed — so a put
        racing a node crash succeeds on the surviving nodes.
        """
        results = self.put_batch([(key, value)])
        return results[key]

    def put_batch(
        self, items: Sequence[Tuple[str, Any]],
    ) -> Dict[str, Tuple[str, ...]]:
        """Replicated write of several pairs, one batch per node per round.

        Returns ``{key: owners}`` for every key.  Keys whose writes fully
        landed in an earlier round are not retried when others are
        re-placed.
        """
        remaining: Dict[str, Any] = dict(items)
        placements: Dict[str, Tuple[str, ...]] = {}
        last_error: Exception | None = None
        for attempt in range(self.put_retries + 1):
            if not remaining:
                return placements
            ring = self.membership.ring
            if not len(ring):
                raise NodeUnavailableError(
                    'no alive nodes remain in the cluster',
                )
            owners_of = {
                key: ring.owners(key, self.replicas) for key in remaining
            }
            by_node: Dict[str, List[Tuple[str, Any]]] = {}
            for key, value in remaining.items():
                for node_id in owners_of[key]:
                    by_node.setdefault(node_id, []).append((key, value))

            def write(node_id: str, batch: List[Tuple[str, Any]]) -> None:
                self._call(node_id, lambda b: b.put_batch(batch))

            pool = self._pool()
            futures = {
                pool.submit(write, node_id, batch): node_id
                for node_id, batch in by_node.items()
            }
            failed: Dict[str, Exception] = {}
            for future, node_id in futures.items():
                try:
                    future.result()
                # repro: ignore[RP004] - failures partition the batch and
                # surface via put_retries / PartialWriteError below
                except Exception as e:  # noqa: BLE001 - sorted below
                    failed[node_id] = e
            if not failed:
                placements.update(owners_of)
                return placements
            # Partition keys: fully landed vs touched by a failed node.
            affected = {
                key: value
                for key, value in remaining.items()
                if any(node_id in failed for node_id in owners_of[key])
            }
            for key in remaining:
                if key not in affected:
                    placements[key] = owners_of[key]
            # Orphan-replica cleanup: evict the copies of affected keys
            # that landed on healthy nodes — a failed replicated put must
            # never leak broker memory.
            self._evict_orphans(affected, owners_of, failed)
            hard = [
                e for e in failed.values()
                if not isinstance(e, NodeUnavailableError)
            ]
            if hard:
                raise hard[0]
            last_error = next(iter(failed.values()))
            remaining = affected
            if attempt < self.put_retries:
                self._bump('put_retries')
        raise NodeUnavailableError(
            f'replicated put failed for {len(remaining)} key(s) after '
            f'{self.put_retries + 1} placement attempts: {last_error}',
        )

    def _evict_orphans(
        self,
        affected: Dict[str, Any],
        owners_of: Dict[str, Tuple[str, ...]],
        failed: Dict[str, Exception],
    ) -> None:
        """Best-effort eviction of partially landed replicas."""
        by_node: Dict[str, List[str]] = {}
        for key in affected:
            for node_id in owners_of[key]:
                if node_id not in failed:
                    by_node.setdefault(node_id, []).append(key)
        evicted = 0
        for node_id, keys in by_node.items():
            try:
                self._call(node_id, lambda b, ks=keys: b.evict_batch(ks))
                evicted += len(keys)
            except Exception:  # noqa: BLE001 - best effort by design,
                # but the miss is still visible on dashboards
                self._bump('orphan_evict_failures', len(keys))
                continue
        if evicted:
            self._bump('orphans_evicted', evicted)

    # -- reads --------------------------------------------------------------- #
    def _fetch(self, node_id: str, key: str) -> Tuple[str, Any]:
        """One replica read: ``('ok', value)``, ``('miss', None)`` or ``('down', None)``."""
        try:
            value = self._call(node_id, lambda b: b.get(key))
        except NodeUnavailableError:
            return ('down', None)
        if value is None:
            return ('miss', None)
        return ('ok', value)

    def get(self, key: str, candidates: Sequence[str] = ()) -> Any | None:
        """Replicated read with hedging, failover, and read-repair.

        ``candidates`` (e.g. the replica list recorded in a key) are tried
        before the ring's current owners; the union covers both a key's
        original placement and wherever migration has since re-homed it.
        """
        order: List[str] = []
        for node_id in (*candidates, *self.owners(key)):
            if node_id not in order:
                order.append(node_id)
        # Prefer live nodes; known-dead ones go last (they may have revived
        # without us noticing, but should not eat the hedge window).
        order.sort(key=lambda n: self.membership.state_of(n) == 'dead')
        if not order:
            return None

        pool = self._pool()
        outcomes: Dict[str, str] = {}
        value: Any = None
        rest = list(order[1:])
        inflight = {pool.submit(self._fetch, order[0], key): order[0]}
        hedge_node: str | None = None
        if rest and self.hedge_threshold > 0:
            done, _ = wait(list(inflight), timeout=self.hedge_threshold)
            if not done:
                # Primary is slow: race the second replica against it.
                hedge_node = rest.pop(0)
                self._bump('hedged_reads')
                inflight[pool.submit(self._fetch, hedge_node, key)] = hedge_node
        while inflight:
            done, _ = wait(list(inflight), return_when=FIRST_COMPLETED)
            for future in done:
                node_id = inflight.pop(future)
                status, fetched = future.result()
                outcomes[node_id] = status
                if status == 'ok' and value is None:
                    value = fetched
                    if node_id == hedge_node:
                        self._bump('hedge_wins')
            if value is not None:
                break
            if not inflight and rest:
                # Every consulted replica missed or is down: fail over.
                next_node = rest.pop(0)
                self._bump('failovers')
                inflight[pool.submit(self._fetch, next_node, key)] = next_node
        if value is not None and self.read_repair:
            self._repair(key, value, outcomes)
        return value

    def _repair(self, key: str, value: Any, outcomes: Dict[str, str]) -> None:
        """Write a recovered value back to live owners found missing it."""
        targets = [
            node_id
            for node_id in self.owners(key)
            if outcomes.get(node_id) == 'miss'
            and self.membership.state_of(node_id) == 'alive'
        ]
        for node_id in targets:
            try:
                self._call(node_id, lambda b: b.put(key, value))
            except Exception:  # noqa: BLE001 - repair is best effort,
                # but a node that refuses repairs should not hide
                self._bump('repair_failures')
                continue
            self._bump('read_repairs')

    def get_batch(self, keys: Sequence[str]) -> List[Any]:
        """Fetch several keys: one batched read per primary, then repair.

        Keys are grouped by their primary owner and fetched with one
        ``get_batch`` round trip per node in parallel; any key whose
        primary missed (or whose node is down) falls back to the full
        replicated :meth:`get` path (failover + read-repair).
        """
        results: List[Any] = [None] * len(keys)
        by_node: Dict[str, List[Tuple[int, str]]] = {}
        for i, key in enumerate(keys):
            owners = self.owners(key)
            if not owners:
                continue
            by_node.setdefault(owners[0], []).append((i, key))

        retry: List[Tuple[int, str]] = []

        def fetch(node_id: str, wanted: List[Tuple[int, str]]) -> None:
            try:
                values = self._call(
                    node_id, lambda b: b.get_batch([k for _, k in wanted]),
                )
            except NodeUnavailableError:
                retry.extend(wanted)
                return
            for (i, key), value in zip(wanted, values):
                if value is None:
                    retry.append((i, key))
                else:
                    results[i] = value

        pool = self._pool()
        futures = [
            pool.submit(fetch, node_id, wanted)
            for node_id, wanted in by_node.items()
        ]
        for future in futures:
            future.result()
        for i, key in retry:
            results[i] = self.get(key)
        return results

    # -- other operations ----------------------------------------------------- #
    def exists(self, key: str, candidates: Sequence[str] = ()) -> bool:
        """Whether any live replica of ``key`` holds a value."""
        seen: List[str] = []
        for node_id in (*candidates, *self.owners(key)):
            if node_id in seen:
                continue
            seen.append(node_id)
            try:
                if self._call(node_id, lambda b: b.exists(key)):
                    return True
            except NodeUnavailableError:
                continue
        return False

    def evict(self, key: str, candidates: Sequence[str] = ()) -> None:
        """Remove ``key`` from every node that may hold it (best effort)."""
        self.evict_batch([key], {key: tuple(candidates)})

    def evict_batch(
        self,
        keys: Sequence[str],
        candidates: Dict[str, Tuple[str, ...]] | None = None,
    ) -> None:
        """Remove several keys, one batched delete per node.

        ``candidates`` optionally maps a key to extra nodes (e.g. the
        replica list recorded at put time) beyond the ring's current
        owners.  Unreachable nodes are skipped — their copies died with
        them.
        """
        by_node: Dict[str, List[str]] = {}
        for key in keys:
            extra = (candidates or {}).get(key, ())
            targets = {*extra, *self.owners(key)}
            for node_id in targets:
                by_node.setdefault(node_id, []).append(key)

        def drop(node_id: str, batch: List[str]) -> None:
            try:
                self._call(node_id, lambda b: b.evict_batch(batch))
            except NodeUnavailableError:
                pass

        pool = self._pool()
        futures = [
            pool.submit(drop, node_id, batch)
            for node_id, batch in by_node.items()
        ]
        for future in futures:
            future.result()

    def node_keys(self, node_id: str) -> List[str]:
        """Enumerate a node's stored keys (rebalancer support)."""
        return self._call(node_id, lambda b: b.keys())

    def close(self) -> None:
        """Shut down the fan-out executor (backends are owned by callers)."""
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=False)
