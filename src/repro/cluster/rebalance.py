"""Background shard migration: heal the cluster after membership changes.

The placement function (the ring) is *stable*: at any moment every client
agrees where a key's replicas belong.  Membership changes move that target,
and the :class:`Rebalancer` moves the data to follow it — in the
background, so foreground traffic keeps priority:

* a **join** pulls the ~``1/N`` of keys whose arcs the new node acquired;
* a **voluntary leave** drains the departing (still reachable) node's keys
  to their new owners before its copies are dropped;
* a **crash** re-replicates every key that lost a copy from its surviving
  replicas to the ring's new owners — this is what makes ``replicas=2``
  survive repeated single-node failures, not just the first one.

Only the *ring-delta* keys are streamed (holders are enumerated with the
cheap ``KEYS`` command and compared against current owners), and the copy
loop is throttled: an optional byte-rate leaky bucket plus a fixed pause
between key batches keeps the migration's bandwidth share bounded.
"""
from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any
from typing import Callable
from typing import Dict
from typing import List
from typing import Set

from repro.cluster.client import ClusterClient
from repro.exceptions import NodeUnavailableError

__all__ = ['RebalanceStats', 'Rebalancer']

#: Keys copied between throttle pauses.
DEFAULT_BATCH_SIZE = 32

#: Seconds slept between key batches (foreground-priority yield).
DEFAULT_PAUSE_S = 0.002


@dataclass
class RebalanceStats:
    """Cumulative counters across every migration run."""

    runs: int = 0
    keys_examined: int = 0
    keys_migrated: int = 0
    bytes_migrated: int = 0
    keys_dropped: int = 0
    failed_runs: int = 0
    last_duration_s: float = 0.0
    last_reason: str = ''

    def as_dict(self) -> dict[str, Any]:
        """JSON-friendly snapshot."""
        return {
            'runs': self.runs,
            'keys_examined': self.keys_examined,
            'keys_migrated': self.keys_migrated,
            'bytes_migrated': self.bytes_migrated,
            'keys_dropped': self.keys_dropped,
            'failed_runs': self.failed_runs,
            'last_duration_s': round(self.last_duration_s, 4),
            'last_reason': self.last_reason,
        }


class Rebalancer:
    """Worker thread migrating ring-delta keys after membership changes.

    Args:
        cluster: the replication engine whose membership/backends to heal.
        throttle_bytes_per_s: byte-rate cap on migration copies (``None``
            = unthrottled).
        batch_size: keys copied between pauses.
        pause_s: sleep between batches so foreground traffic keeps
            priority.
        key_filter: predicate selecting which stored keys participate in
            ring placement (the DIM layer excludes stripe shards, whose
            locations are pinned in their parent key).
        drop_drained: remove copies from nodes that are no longer owners
            once every owner holds the key (frees departed/stale memory).
    """

    def __init__(
        self,
        cluster: ClusterClient,
        *,
        throttle_bytes_per_s: float | None = None,
        batch_size: int = DEFAULT_BATCH_SIZE,
        pause_s: float = DEFAULT_PAUSE_S,
        key_filter: Callable[[str], bool] | None = None,
        drop_drained: bool = True,
    ) -> None:
        self.cluster = cluster
        self.throttle_bytes_per_s = throttle_bytes_per_s
        self.batch_size = max(1, batch_size)
        self.pause_s = pause_s
        self.key_filter = key_filter
        self.drop_drained = drop_drained
        self.stats = RebalanceStats()
        self._cond = threading.Condition()
        self._dirty_reasons: List[str] = []
        self._busy = False
        self._stopped = False
        self._thread: threading.Thread | None = None
        cluster.membership.subscribe(self._on_ring_change)

    # -- scheduling --------------------------------------------------------- #
    def _on_ring_change(self, old_ring: Any, new_ring: Any, reason: str) -> None:
        self.schedule(reason)

    def schedule(self, reason: str = 'manual') -> None:
        """Queue a migration pass (coalesced with any already pending)."""
        with self._cond:
            if self._stopped:
                return
            self._dirty_reasons.append(reason)
            if self._thread is None:
                self._thread = threading.Thread(
                    target=self._worker, name='cluster-rebalance', daemon=True,
                )
                self._thread.start()
            self._cond.notify_all()

    def wait_idle(self, timeout: float | None = None) -> bool:
        """Block until no migration is pending or running; False on timeout."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while self._dirty_reasons or self._busy:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                self._cond.wait(remaining)
            return True

    def stop(self) -> None:
        """Stop the worker (pending migrations are abandoned)."""
        with self._cond:
            self._stopped = True
            self._dirty_reasons.clear()
            self._cond.notify_all()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=5)

    def _worker(self) -> None:
        while True:
            with self._cond:
                while not self._dirty_reasons and not self._stopped:
                    self._cond.wait()
                if self._stopped:
                    return
                reasons = ','.join(self._dirty_reasons)
                self._dirty_reasons.clear()
                self._busy = True
            try:
                self._migrate(reasons)
            except Exception:  # noqa: BLE001 - a failed pass must not kill
                # the worker; the next membership change reschedules —
                # but the failure must stay visible on dashboards.
                with self._cond:
                    self.stats.failed_runs += 1
                metrics = self.cluster._metrics
                if metrics is not None:
                    metrics.record('cluster.rebalance_failures', 0.0)
            finally:
                with self._cond:
                    self._busy = False
                    self._cond.notify_all()

    # -- migration ----------------------------------------------------------- #
    def _holders(self) -> Dict[str, Set[str]]:
        """Map each placement-participating key to the nodes holding it."""
        holders: Dict[str, Set[str]] = {}
        for node_id in self.cluster.membership.reachable():
            try:
                stored = self.cluster.node_keys(node_id)
            except NodeUnavailableError:
                continue
            for key in stored:
                if self.key_filter is not None and not self.key_filter(key):
                    continue
                holders.setdefault(key, set()).add(node_id)
        return holders

    def _migrate(self, reason: str) -> None:
        start = time.monotonic()
        cluster = self.cluster
        membership = cluster.membership
        holders = self._holders()
        copied = 0
        copied_bytes = 0
        dropped = 0
        bucket_started = time.monotonic()
        in_batch = 0
        for key, holding in holders.items():
            ring = membership.ring
            if not len(ring):
                break  # no alive nodes to migrate onto
            owners = set(ring.owners(key, cluster.replicas))
            missing = owners - holding
            if missing:
                value = self._read_copy(key, holding)
                if value is not None:
                    for node_id in sorted(missing):
                        if self._write_copy(node_id, key, value):
                            holding.add(node_id)
                            copied += 1
                            copied_bytes += _nbytes(value)
                            in_batch += 1
            if self.drop_drained and owners and owners <= holding:
                for node_id in sorted(holding - owners):
                    if self._drop_copy(node_id, key):
                        dropped += 1
            if in_batch >= self.batch_size:
                in_batch = 0
                if self.pause_s:
                    time.sleep(self.pause_s)
                if self.throttle_bytes_per_s:
                    target = copied_bytes / self.throttle_bytes_per_s
                    excess = target - (time.monotonic() - bucket_started)
                    if excess > 0:
                        time.sleep(excess)
        with self._cond:
            self.stats.runs += 1
            self.stats.keys_examined += len(holders)
            self.stats.keys_migrated += copied
            self.stats.bytes_migrated += copied_bytes
            self.stats.keys_dropped += dropped
            self.stats.last_duration_s = time.monotonic() - start
            self.stats.last_reason = reason
        metrics = cluster._metrics
        if metrics is not None and (copied or dropped):
            metrics.record(
                'cluster.rebalance',
                self.stats.last_duration_s,
                copied_bytes,
            )

    def _read_copy(self, key: str, holding: Set[str]) -> Any | None:
        """Fetch one replica to copy from, preferring alive holders."""
        membership = self.cluster.membership
        ordered = sorted(
            holding, key=lambda n: membership.state_of(n) != 'alive',
        )
        for node_id in ordered:
            try:
                value = self.cluster._call(node_id, lambda b: b.get(key))
            except NodeUnavailableError:
                continue
            if value is not None:
                return value
        return None

    def _write_copy(self, node_id: str, key: str, value: Any) -> bool:
        try:
            self.cluster._call(node_id, lambda b: b.put(key, value))
            return True
        except NodeUnavailableError:
            return False

    def _drop_copy(self, node_id: str, key: str) -> bool:
        try:
            self.cluster._call(node_id, lambda b: b.evict(key))
            return True
        except NodeUnavailableError:
            return False


def _nbytes(value: Any) -> int:
    try:
        return len(value)
    except TypeError:
        return 0
