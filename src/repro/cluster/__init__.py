"""Self-healing cluster substrate: placement, membership, replication, repair.

This package turns the fixed-topology DIM store into an elastic service:

* :mod:`repro.cluster.ring` — a consistent-hash ring with virtual nodes:
  the deterministic placement function every client computes locally, so
  no coordinator is needed for clients to agree where a key's replicas
  live.
* :mod:`repro.cluster.membership` — node join/leave (voluntary) and crash
  detection (via the KV transport's typed
  :class:`~repro.exceptions.NodeUnavailableError` path), with per-node
  health threaded into store metrics.
* :mod:`repro.cluster.client` — the replication engine: N-way writes,
  hedged reads with failover and read-repair, and orphan-replica cleanup
  on partial failures.
* :mod:`repro.cluster.rebalance` — throttled background migration of the
  ring-delta keys after any membership change.

The DIM connectors (``zmq://``, ``ucx://``, ``margo://``) and the
clustered Redis connector wire these together via ``replicas=`` and
``ring_vnodes=`` configuration; see ``docs/ARCHITECTURE.md``.
"""
from repro.cluster.client import ClusterClient
from repro.cluster.client import ClusterStats
from repro.cluster.client import DEFAULT_HEDGE_THRESHOLD
from repro.cluster.client import NodeBackend
from repro.cluster.membership import ClusterMembership
from repro.cluster.membership import DEFAULT_FAILURE_THRESHOLD
from repro.cluster.membership import NodeHealth
from repro.cluster.rebalance import RebalanceStats
from repro.cluster.rebalance import Rebalancer
from repro.cluster.ring import DEFAULT_VNODES
from repro.cluster.ring import HashRing
from repro.cluster.ring import LegacyRing
from repro.cluster.ring import placement_delta

__all__ = [
    'ClusterClient',
    'ClusterMembership',
    'ClusterStats',
    'DEFAULT_FAILURE_THRESHOLD',
    'DEFAULT_HEDGE_THRESHOLD',
    'DEFAULT_VNODES',
    'HashRing',
    'LegacyRing',
    'NodeBackend',
    'NodeHealth',
    'RebalanceStats',
    'Rebalancer',
    'placement_delta',
]
