"""Cluster membership: who is in the ring, and how healthy they are.

:class:`ClusterMembership` owns the node set from which the consistent-hash
ring is built.  Nodes enter via :meth:`join` and exit two ways:

* **voluntarily** — :meth:`leave` marks the node ``'left'``: it drops out
  of the ring (no new placements) but is still *reachable*, so the
  rebalancer can drain its keys off it before they are forgotten.
* **by crashing** — every replicated operation reports its per-node outcome
  through :meth:`record`; once a node accumulates ``failure_threshold``
  consecutive :class:`~repro.exceptions.NodeUnavailableError` failures it
  is marked ``'dead'`` (unreachable, data presumed lost) and the ring
  recomputes without it.

Any ring change notifies subscribed listeners (the rebalancer) with the
old and new rings, which is the trigger for background shard migration.

Per-node health is also threaded into a bound
:class:`~repro.store.metrics.StoreMetrics` (when the owning ``Store`` has
metrics enabled) as ``cluster.node.<id>.ok`` / ``cluster.node.<id>.fail``
operations, so node latency and failure counts appear next to the store's
put/get timings.
"""
from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from dataclasses import field
from typing import Any
from typing import Callable
from typing import Iterable

from repro.cluster.ring import DEFAULT_VNODES
from repro.cluster.ring import HashRing

__all__ = ['ClusterMembership', 'NodeHealth', 'DEFAULT_FAILURE_THRESHOLD']

#: Consecutive unavailable-failures after which a node is declared dead.
#: A refused connection is a strong signal, so one strike suffices by
#: default; raise it on flaky networks where blips are common.
DEFAULT_FAILURE_THRESHOLD = 1

#: EWMA smoothing factor for per-node request latency.
_LATENCY_ALPHA = 0.2

RingListener = Callable[[HashRing, HashRing, str], None]


@dataclass
class NodeHealth:
    """Mutable health record for one cluster node."""

    node_id: str
    state: str = 'alive'  # 'alive' | 'left' | 'dead'
    successes: int = 0
    failures: int = 0
    consecutive_failures: int = 0
    latency_ewma: float = 0.0
    last_error: str | None = None
    since: float = field(default_factory=time.monotonic)

    def as_dict(self) -> dict[str, Any]:
        """JSON-friendly snapshot (used by ``Store.cluster_health()``)."""
        return {
            'state': self.state,
            'successes': self.successes,
            'failures': self.failures,
            'consecutive_failures': self.consecutive_failures,
            'latency_ewma_s': round(self.latency_ewma, 6),
            'last_error': self.last_error,
        }


class ClusterMembership:
    """Tracks the node set, detects crashes, and rebuilds the ring.

    Args:
        nodes: initial node ids (all start ``'alive'``).
        vnodes: virtual points per node for the consistent-hash ring.
        failure_threshold: consecutive unavailable-failures before a node
            is declared dead.
    """

    def __init__(
        self,
        nodes: Iterable[str],
        *,
        vnodes: int = DEFAULT_VNODES,
        failure_threshold: int = DEFAULT_FAILURE_THRESHOLD,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError('failure_threshold must be at least 1')
        self.vnodes = vnodes
        self.failure_threshold = failure_threshold
        self._lock = threading.Lock()
        self._health: dict[str, NodeHealth] = {
            node_id: NodeHealth(node_id) for node_id in nodes
        }
        self._ring = HashRing(self._health, vnodes)
        self._listeners: list[RingListener] = []
        self._metrics: Any = None

    # -- introspection ----------------------------------------------------- #
    @property
    def ring(self) -> HashRing:
        """The current ring over *alive* nodes only."""
        with self._lock:
            return self._ring

    def alive(self) -> tuple[str, ...]:
        """Node ids currently alive (sorted)."""
        with self._lock:
            return tuple(sorted(
                n for n, h in self._health.items() if h.state == 'alive'
            ))

    def reachable(self) -> tuple[str, ...]:
        """Nodes the rebalancer may still *read* from: alive + left.

        A voluntarily departing node holds data that must be drained off
        it, so it stays readable until migration completes; a dead node's
        data is presumed lost.
        """
        with self._lock:
            return tuple(sorted(
                n for n, h in self._health.items() if h.state != 'dead'
            ))

    def state_of(self, node_id: str) -> str | None:
        """The node's state, or ``None`` if it was never a member."""
        with self._lock:
            health = self._health.get(node_id)
            return health.state if health else None

    def health(self) -> dict[str, dict[str, Any]]:
        """Per-node health snapshot keyed by node id."""
        with self._lock:
            return {n: h.as_dict() for n, h in self._health.items()}

    def bind_metrics(self, metrics: Any) -> None:
        """Record per-node outcomes into ``metrics`` (a ``StoreMetrics``)."""
        self._metrics = metrics

    # -- membership changes ------------------------------------------------- #
    def subscribe(self, listener: RingListener) -> None:
        """Call ``listener(old_ring, new_ring, reason)`` on ring changes."""
        self._listeners.append(listener)

    def _rebuild_ring_locked(self) -> HashRing:
        alive = [n for n, h in self._health.items() if h.state == 'alive']
        self._ring = HashRing(alive, self.vnodes)
        return self._ring

    def _change(self, mutate: Callable[[], bool], reason: str) -> bool:
        """Apply a membership mutation; notify listeners on a ring change."""
        with self._lock:
            old_ring = self._ring
            if not mutate():
                return False
            new_ring = self._rebuild_ring_locked()
        if new_ring != old_ring:
            # Outside the lock: listeners (the rebalancer) may call back
            # into membership accessors.
            for listener in list(self._listeners):
                listener(old_ring, new_ring, reason)
        return True

    def join(self, node_id: str) -> bool:
        """Add (or revive) ``node_id``; returns False if already alive."""
        def mutate() -> bool:
            health = self._health.get(node_id)
            if health is not None and health.state == 'alive':
                return False
            self._health[node_id] = NodeHealth(node_id)
            return True
        return self._change(mutate, f'join:{node_id}')

    def leave(self, node_id: str) -> bool:
        """Voluntarily remove ``node_id`` (stays readable for draining)."""
        def mutate() -> bool:
            health = self._health.get(node_id)
            if health is None or health.state != 'alive':
                return False
            health.state = 'left'
            health.since = time.monotonic()
            return True
        return self._change(mutate, f'leave:{node_id}')

    def mark_dead(self, node_id: str, error: Exception | str | None = None) -> bool:
        """Declare ``node_id`` crashed (unreachable, data presumed lost)."""
        def mutate() -> bool:
            health = self._health.get(node_id)
            if health is None or health.state == 'dead':
                return False
            health.state = 'dead'
            health.since = time.monotonic()
            if error is not None:
                health.last_error = str(error)
            return True
        return self._change(mutate, f'dead:{node_id}')

    def forget(self, node_id: str) -> bool:
        """Drop a left/dead node from the roster entirely (post-drain)."""
        def mutate() -> bool:
            health = self._health.get(node_id)
            if health is None or health.state == 'alive':
                return False
            del self._health[node_id]
            return True
        return self._change(mutate, f'forget:{node_id}')

    # -- crash detection ----------------------------------------------------- #
    def record(
        self,
        node_id: str,
        *,
        ok: bool,
        elapsed: float = 0.0,
        unavailable: bool = False,
        error: Exception | None = None,
    ) -> None:
        """Fold one per-node operation outcome into health state.

        ``unavailable=True`` marks a :class:`NodeUnavailableError`-class
        failure; ``failure_threshold`` consecutive ones declare the node
        dead (which rebuilds the ring and wakes the rebalancer).  Other
        failures count against health but never evict the node — a corrupt
        request is the caller's bug, not the node's.
        """
        declare_dead = False
        with self._lock:
            health = self._health.get(node_id)
            if health is None:
                health = self._health[node_id] = NodeHealth(node_id)
            if ok:
                health.successes += 1
                health.consecutive_failures = 0
                if elapsed > 0.0:
                    if health.latency_ewma == 0.0:
                        health.latency_ewma = elapsed
                    else:
                        health.latency_ewma += _LATENCY_ALPHA * (
                            elapsed - health.latency_ewma
                        )
            else:
                health.failures += 1
                health.consecutive_failures += 1
                if error is not None:
                    health.last_error = str(error)
                if (
                    unavailable
                    and health.state == 'alive'
                    and health.consecutive_failures >= self.failure_threshold
                ):
                    declare_dead = True
        metrics = self._metrics
        if metrics is not None:
            suffix = 'ok' if ok else 'fail'
            metrics.record(f'cluster.node.{node_id}.{suffix}', elapsed)
        if declare_dead:
            self.mark_dead(node_id, error)
