"""Consistent-hash ring: the cluster's deterministic placement function.

Placement must satisfy three properties for a self-healing store:

* **Deterministic across processes** — every client (and the background
  rebalancer) computes the same owners for a key without coordination, so
  the hash is :func:`hashlib.blake2b` over stable strings, never Python's
  randomized ``hash()``.
* **Even spread** — each physical node is projected onto the ring as
  ``vnodes`` virtual points, so load variance shrinks as vnodes grow and a
  node's keys scatter over *all* other nodes when it leaves (no single
  successor inherits everything).
* **Minimal movement** — adding or removing one node only re-places the
  keys in the arcs it gains or loses: ~``1/N`` of the key space, which is
  what makes live rebalancing affordable (migrate the delta, not the
  world).

:class:`LegacyRing` preserves the pre-cluster static behaviour (every key
pinned to the local node, ``replicas=1``) behind the same ``owners()``
interface, so the client has one placement code path.
"""
from __future__ import annotations

import bisect
import hashlib
from typing import Dict
from typing import Iterable
from typing import Sequence
from typing import Tuple

__all__ = [
    'DEFAULT_VNODES',
    'HashRing',
    'LegacyRing',
    'placement_delta',
]

#: Virtual points per physical node.  64 keeps the ring small (a few KB for
#: dozens of nodes) while holding per-node load imbalance to a few percent.
DEFAULT_VNODES = 64


def _point(label: str) -> int:
    """Stable 64-bit ring position for ``label`` (process-independent)."""
    return int.from_bytes(
        hashlib.blake2b(label.encode(), digest_size=8).digest(), 'big',
    )


class HashRing:
    """Immutable consistent-hash ring over a set of node ids.

    Args:
        nodes: the physical node ids participating in placement.
        vnodes: virtual points per node (must be >= 1).
    """

    __slots__ = ('_nodes', 'vnodes', '_points', '_owners_at')

    def __init__(self, nodes: Iterable[str], vnodes: int = DEFAULT_VNODES) -> None:
        if vnodes < 1:
            raise ValueError('vnodes must be at least 1')
        self._nodes: Tuple[str, ...] = tuple(sorted(set(nodes)))
        self.vnodes = vnodes
        points: list[tuple[int, str]] = []
        for node in self._nodes:
            for i in range(vnodes):
                points.append((_point(f'{node}#{i}'), node))
        points.sort()
        self._points = [p for p, _ in points]
        self._owners_at = [n for _, n in points]

    # -- introspection ----------------------------------------------------- #
    @property
    def nodes(self) -> Tuple[str, ...]:
        """The node ids on the ring, sorted."""
        return self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._nodes

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, HashRing)
            and self._nodes == other._nodes
            and self.vnodes == other.vnodes
        )

    def __hash__(self) -> int:
        return hash((self._nodes, self.vnodes))

    def __repr__(self) -> str:
        return f'HashRing(nodes={list(self._nodes)!r}, vnodes={self.vnodes})'

    def __reduce__(self):
        """Pickle as (nodes, vnodes) — positions are recomputed, never shipped."""
        return (type(self), (self._nodes, self.vnodes))

    # -- placement --------------------------------------------------------- #
    def owners(self, key: str, n: int = 1) -> Tuple[str, ...]:
        """The first ``n`` distinct nodes clockwise from ``key``'s position.

        The first entry is the key's *primary*; the rest are its replicas in
        preference order.  Fewer than ``n`` nodes on the ring returns them
        all — callers decide whether under-replication is acceptable.
        """
        if not self._nodes:
            return ()
        n = min(n, len(self._nodes))
        if n == len(self._nodes) == 1:
            return self._nodes
        start = bisect.bisect_right(self._points, _point(key))
        total = len(self._points)
        found: list[str] = []
        for step in range(total):
            node = self._owners_at[(start + step) % total]
            if node not in found:
                found.append(node)
                if len(found) == n:
                    break
        return tuple(found)

    def primary(self, key: str) -> str | None:
        """The key's primary owner (``None`` on an empty ring)."""
        owners = self.owners(key, 1)
        return owners[0] if owners else None

    # -- membership-derived rings ------------------------------------------ #
    def with_nodes(self, *node_ids: str) -> 'HashRing':
        """A new ring with ``node_ids`` added."""
        return HashRing((*self._nodes, *node_ids), self.vnodes)

    def without_nodes(self, *node_ids: str) -> 'HashRing':
        """A new ring with ``node_ids`` removed."""
        dropped = set(node_ids)
        return HashRing(
            (n for n in self._nodes if n not in dropped), self.vnodes,
        )


class LegacyRing:
    """Static pre-cluster placement: every key owned by one pinned node.

    This is the ``replicas=1`` compatibility mode — puts land on the local
    node exactly as they did before the cluster subsystem existed, but
    through the same ``owners()`` interface the consistent-hash ring
    provides.
    """

    __slots__ = ('node_id',)

    def __init__(self, node_id: str) -> None:
        self.node_id = node_id

    @property
    def nodes(self) -> Tuple[str, ...]:
        """The single pinned node."""
        return (self.node_id,)

    def __len__(self) -> int:
        return 1

    def __contains__(self, node_id: str) -> bool:
        return node_id == self.node_id

    def __eq__(self, other: object) -> bool:
        return isinstance(other, LegacyRing) and self.node_id == other.node_id

    def __hash__(self) -> int:
        return hash(('legacy', self.node_id))

    def __repr__(self) -> str:
        return f'LegacyRing(node_id={self.node_id!r})'

    def owners(self, key: str, n: int = 1) -> Tuple[str, ...]:
        """Always the pinned node, regardless of key or requested count."""
        return (self.node_id,)

    def primary(self, key: str) -> str:
        """The pinned node."""
        return self.node_id


def placement_delta(
    old: HashRing,
    new: HashRing,
    keys: Sequence[str],
    replicas: int = 1,
) -> Dict[str, Tuple[Tuple[str, ...], Tuple[str, ...]]]:
    """Keys whose owner set changes between two rings.

    Returns ``{key: (old_owners, new_owners)}`` for exactly the keys the
    rebalancer must touch; keys whose owners are unchanged are absent.  On a
    single node join or leave this is ~``replicas/N`` of the key space.
    """
    delta: Dict[str, Tuple[Tuple[str, ...], Tuple[str, ...]]] = {}
    for key in keys:
        before = old.owners(key, replicas)
        after = new.owners(key, replicas)
        if before != after:
            delta[key] = (before, after)
    return delta
