"""Client-side routing for the distributed in-memory store.

A :class:`DIMClient` is bound to the local node (where it puts new objects)
and can fetch objects from any node named in a :class:`DIMKey`: memory nodes
are reached through the in-process registry (standing in for RDMA reads of
remote memory), TCP nodes through a cached pipelined socket client per
address (a small connection pool each, so concurrent fetches get parallel
streams).

Two transport-level optimizations ride on top of the plain routing:

* **Sharding** — when ``peers`` names the store's other nodes, objects at
  least ``shard_threshold`` bytes are striped across them in contiguous
  chunks (zero-copy memoryview slices of the payload's segments) written in
  parallel; the returned key carries the ordered shard locations, and a get
  fetches every shard concurrently and reassembles them without a join
  (as a :class:`~repro.serialize.buffers.SerializedObject`).  A single
  multi-hundred-MB transfer therefore uses every node's bandwidth instead
  of one node's.
* **Batching** — ``get_batch``/``put_batch``/``evict_batch`` group plain
  keys by node and issue one ``MGET``/``MSET``/``MDEL`` wire round trip per
  node (in parallel across nodes) instead of one round trip per key.

With ``replicas >= 2`` (or ``ring_vnodes > 0``) the client becomes a
**self-healing cluster member**: plain objects are placed by a
consistent-hash ring over ``peers`` (every client computes the same owners
— no coordinator), written to N replicas, and read with hedging, failover
and read-repair.  A crashed peer is detected through the KV transport's
typed :class:`~repro.exceptions.NodeUnavailableError`, removed from the
ring, and a background :class:`~repro.cluster.Rebalancer` re-replicates
exactly the ring-delta keys.  ``replicas=1`` without ``ring_vnodes``
preserves the legacy static topology (a :class:`~repro.cluster.LegacyRing`
pinning every put to the local node).  Sharded stripes remain pinned to
their recorded locations — striping and replication are orthogonal, and
the rebalancer skips stripe ids.
"""
from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any
from typing import Iterable
from typing import NamedTuple
from typing import Optional
from typing import Sequence

from repro.cluster.client import ClusterClient
from repro.cluster.client import DEFAULT_HEDGE_THRESHOLD
from repro.cluster.membership import ClusterMembership
from repro.cluster.membership import DEFAULT_FAILURE_THRESHOLD
from repro.cluster.rebalance import Rebalancer
from repro.cluster.ring import DEFAULT_VNODES
from repro.cluster.ring import LegacyRing
from repro.connectors.protocol import new_object_id
from repro.dim.node import DIMKey
from repro.dim.node import DIMReplica
from repro.dim.node import DIMShard
from repro.dim.node import get_local_node
from repro.dim.node import lookup_node
from repro.exceptions import ConnectorError
from repro.exceptions import NodeUnavailableError
from repro.kvserver.client import DEFAULT_POOL_SIZE
from repro.kvserver.client import DEFAULT_TIMEOUT
from repro.kvserver.client import KVClient
from repro.serialize.buffers import SerializedObject
from repro.serialize.buffers import payload_nbytes
from repro.serialize.buffers import segments_of

__all__ = ['DIMClient', 'DEFAULT_SHARD_THRESHOLD']

#: Objects at least this large are striped across peer nodes (when
#: configured).  64 MiB keeps small/medium objects on one node (one round
#: trip) while multi-hundred-MB tensors engage every node's bandwidth.
DEFAULT_SHARD_THRESHOLD = 64 * 1024 * 1024

#: Upper bound on threads used for one sharded transfer.
_MAX_PARALLEL_TRANSFERS = 8


class _Target(NamedTuple):
    """A resolved shard target: an in-process node or a remote address."""

    node_id: str
    address: tuple[str, int] | None  # None = reachable only in-process


class _DIMBackend:
    """Per-node transport driven by the cluster replication engine.

    TCP nodes resolve their current address through the owning client on
    every operation (a rejoined node gets a fresh port); memory nodes go
    through the in-process registry, where a closed node means *crashed* —
    surfaced as :class:`NodeUnavailableError`, never as silently empty.
    """

    __slots__ = ('node_id', '_client')

    def __init__(self, node_id: str, client: 'DIMClient') -> None:
        self.node_id = node_id
        self._client = client

    def _kv(self) -> KVClient:
        address = self._client._peer_address(self.node_id)
        return self._client._tcp_client(address)

    def _node(self):
        node = lookup_node(self.node_id, 'memory')
        if node is None or node.closed:
            raise NodeUnavailableError(
                f'DIM node {self.node_id!r} is not available in this process',
            )
        return node

    def put(self, key: str, value: Any) -> None:
        if self._client.transport == 'tcp':
            self._kv().set(key, value)
        else:
            self._node().put_local(key, value)

    def put_batch(self, items: Sequence[tuple[str, Any]]) -> None:
        if self._client.transport == 'tcp':
            self._kv().mset(items)
        else:
            self._node().put_local_batch(items)

    def get(self, key: str) -> Any | None:
        if self._client.transport == 'tcp':
            return self._kv().get(key)
        return self._node().get_local(key)

    def get_batch(self, keys: Sequence[str]) -> list[Any]:
        if self._client.transport == 'tcp':
            return self._kv().mget(keys)
        node = self._node()
        return [node.get_local(key) for key in keys]

    def exists(self, key: str) -> bool:
        if self._client.transport == 'tcp':
            return self._kv().exists(key)
        return self._node().exists_local(key)

    def evict(self, key: str) -> None:
        if self._client.transport == 'tcp':
            self._kv().delete(key)
        else:
            self._node().evict_local(key)

    def evict_batch(self, keys: Sequence[str]) -> None:
        if self._client.transport == 'tcp':
            self._kv().mdel(keys)
        else:
            node = self._node()
            for key in keys:
                node.evict_local(key)

    def keys(self) -> list[str]:
        if self._client.transport == 'tcp':
            return self._kv().keys()
        return self._node().keys_local()


class DIMClient:
    """Puts objects on the local node and gets them from any node.

    Args:
        node_id: logical identity of the local node.
        transport: ``'memory'`` (RDMA stand-in) or ``'tcp'``.
        peers: the store's shard targets — node ids (spawned/looked up
            in-process, the same way the local node is) or
            ``(node_id, host, port)`` tuples for nodes in other processes
            (TCP transport only).  Sharding stripes across exactly this
            list; include the local node's id if it should hold a stripe.
            Empty (the default) disables sharding.
        shard_threshold: minimum payload size (bytes) for striping; ``0``
            disables sharding regardless of ``peers``.
        pool_size: connections pooled per remote node (parallel streams).
        timeout: per-request inactivity bound passed to the KV clients.
        replicas: copies written per plain object.  ``1`` (default) keeps
            the legacy static topology; ``>= 2`` enables ring placement
            over ``peers`` with replication, hedged reads, read-repair and
            crash failover.
        ring_vnodes: virtual ring points per peer.  ``0`` (default) keeps
            the legacy topology unless ``replicas >= 2`` (which implies
            the default of ``repro.cluster.DEFAULT_VNODES``).
        hedge_threshold: seconds the primary replica may stay silent
            before a read is hedged to the second replica.
        failure_threshold: consecutive unavailable-failures before a peer
            is declared dead and dropped from the ring.
        rebalance: run the background rebalancer (migrate ring-delta keys
            on membership changes).  Only meaningful when clustered.
        rebalance_throttle: optional bytes/second cap on migration copies
            so foreground traffic keeps priority.
    """

    def __init__(
        self,
        node_id: str,
        transport: str = 'memory',
        *,
        peers: Sequence[Any] = (),
        shard_threshold: int = DEFAULT_SHARD_THRESHOLD,
        pool_size: int = DEFAULT_POOL_SIZE,
        timeout: float = DEFAULT_TIMEOUT,
        replicas: int = 1,
        ring_vnodes: int = 0,
        hedge_threshold: float = DEFAULT_HEDGE_THRESHOLD,
        failure_threshold: int = DEFAULT_FAILURE_THRESHOLD,
        rebalance: bool = True,
        rebalance_throttle: float | None = None,
    ) -> None:
        if replicas < 1:
            raise ValueError('replicas must be at least 1')
        self.node_id = node_id
        self.transport = transport
        self.local_node = get_local_node(node_id, transport)
        self.peers = tuple(tuple(p) if isinstance(p, (list, tuple)) else p for p in peers)
        self.shard_threshold = shard_threshold
        self.pool_size = pool_size
        self.timeout = timeout
        self.replicas = replicas
        self.ring_vnodes = ring_vnodes
        self.hedge_threshold = hedge_threshold
        self.failure_threshold = failure_threshold
        self.rebalance_throttle = rebalance_throttle
        self._tcp_clients: dict[tuple[str, int], KVClient] = {}
        self._executor: ThreadPoolExecutor | None = None
        self._lock = threading.Lock()
        self.cluster: ClusterClient | None = None
        self.rebalancer: Rebalancer | None = None
        self._peer_addrs: dict[str, tuple[str, int] | None] = {}
        if replicas > 1 or ring_vnodes > 0:
            if not self.peers:
                raise ConnectorError(
                    'cluster placement (replicas>1 or ring_vnodes>0) '
                    'requires a non-empty peers list',
                )
            members = []
            for peer in self.peers:
                target = self._resolve_peer(peer)
                self._peer_addrs[target.node_id] = target.address
                members.append(target.node_id)
            membership = ClusterMembership(
                members,
                vnodes=ring_vnodes or DEFAULT_VNODES,
                failure_threshold=failure_threshold,
            )
            self.cluster = ClusterClient(
                lambda nid: _DIMBackend(nid, self),
                membership,
                replicas=replicas,
                hedge_threshold=hedge_threshold,
            )
            if rebalance:
                self.rebalancer = Rebalancer(
                    self.cluster,
                    throttle_bytes_per_s=rebalance_throttle,
                    # Stripe shards (`<id>.s<i>`) are pinned to the
                    # locations recorded in their parent key — the ring
                    # must not move them.
                    key_filter=lambda key: '.s' not in key,
                )

    # -- helpers ------------------------------------------------------------ #
    def _tcp_client(self, address: tuple[str, int]) -> KVClient:
        address = tuple(address)  # type: ignore[assignment]
        with self._lock:
            client = self._tcp_clients.get(address)
            if client is None:
                client = KVClient(
                    *address, pool_size=self.pool_size, timeout=self.timeout,
                )
                self._tcp_clients[address] = client
            return client

    def _resolve_peer(self, peer: Any) -> _Target:
        if isinstance(peer, str):
            node = get_local_node(peer, self.transport)
            return _Target(peer, node.address)
        if isinstance(peer, tuple) and len(peer) == 3:
            node_id, host, port = peer
            if self.transport != 'tcp':
                raise ConnectorError(
                    f'addressed peer {peer!r} requires the tcp transport',
                )
            return _Target(str(node_id), (str(host), int(port)))
        raise ConnectorError(
            f'malformed DIM peer {peer!r}: expected a node id or '
            '(node_id, host, port)',
        )

    # -- cluster placement --------------------------------------------------- #
    @property
    def ring(self):
        """The placement function: the live hash ring, or the legacy pin."""
        if self.cluster is not None:
            return self.cluster.membership.ring
        return LegacyRing(self.node_id)

    def _peer_address(self, node_id: str) -> tuple[str, int]:
        """Current TCP address of a cluster peer (refreshed on rejoin)."""
        address = self._peer_addrs.get(node_id)
        if address is None:
            # In-process peer: its node (and port) may have been recreated.
            node = lookup_node(node_id, 'tcp')
            if node is not None and not node.closed and node.address is not None:
                return node.address
            raise NodeUnavailableError(
                f'no address known for DIM peer {node_id!r}',
            )
        return address

    def bind_metrics(self, metrics: Any) -> None:
        """Thread per-node health and cluster events into store metrics."""
        if self.cluster is not None:
            self.cluster.bind_metrics(metrics)

    def cluster_health(self) -> dict[str, Any]:
        """Snapshot of membership, per-node health and self-healing stats."""
        if self.cluster is None:
            return {
                'clustered': False,
                'replicas': 1,
                'ring': list(self.ring.nodes),
            }
        health = {
            'clustered': True,
            'replicas': self.replicas,
            'ring_vnodes': self.cluster.membership.vnodes,
            'ring': list(self.cluster.membership.ring.nodes),
            'nodes': self.cluster.membership.health(),
            'stats': self.cluster.stats.as_dict(),
        }
        if self.rebalancer is not None:
            health['rebalance'] = self.rebalancer.stats.as_dict()
        return health

    def join_peer(self, peer: Any) -> None:
        """Add ``peer`` to the cluster; the rebalancer pulls its key share.

        Accepts the same forms as ``peers``: a node id (spawned/looked up
        in-process) or ``(node_id, host, port)``.  Rejoining a crashed node
        id spawns a fresh, empty node.
        """
        if self.cluster is None:
            raise ConnectorError('join_peer requires a clustered DIMClient')
        target = self._resolve_peer(peer)
        self._peer_addrs[target.node_id] = target.address
        self.cluster.membership.join(target.node_id)

    def leave_peer(self, node_id: str) -> None:
        """Voluntarily remove ``node_id``; its keys drain to the new owners.

        The node stays reachable while the background rebalancer copies its
        share to the remaining members (use ``rebalancer.wait_idle()`` to
        block until the drain completes before actually stopping it).
        """
        if self.cluster is None:
            raise ConnectorError('leave_peer requires a clustered DIMClient')
        self.cluster.membership.leave(node_id)

    def _replica_locations(self, owners: Sequence[str]) -> tuple[DIMReplica, ...]:
        return tuple(
            DIMReplica(
                node_id=node_id,
                transport=self.transport,
                address=self._peer_addrs.get(node_id),
            )
            for node_id in owners
        )

    def _adopt_replica_addresses(self, key: DIMKey) -> None:
        """Learn addresses recorded in a key for peers we have not met."""
        assert key.replicas is not None
        for replica in key.replicas:
            if replica.address is not None:
                self._peer_addrs.setdefault(
                    replica.node_id, tuple(replica.address),
                )

    def _get_replicated(self, key: DIMKey) -> Any | None:
        assert key.replicas is not None
        if self.cluster is not None:
            self._adopt_replica_addresses(key)
            return self.cluster.get(
                key.object_id, [r.node_id for r in key.replicas],
            )
        # Plain consumer (no cluster config): straight failover down the
        # replica list recorded in the key.
        for replica in key.replicas:
            try:
                if replica.transport == 'memory':
                    node = lookup_node(replica.node_id, 'memory')
                    if node is None or node.closed:
                        continue
                    value = node.get_local(key.object_id)
                elif replica.address is None:
                    continue
                else:
                    value = self._tcp_client(
                        tuple(replica.address),
                    ).get(key.object_id)
            except NodeUnavailableError:
                continue
            if value is not None:
                return value
        return None

    def _exists_replicated(self, key: DIMKey) -> bool:
        assert key.replicas is not None
        if self.cluster is not None:
            self._adopt_replica_addresses(key)
            return self.cluster.exists(
                key.object_id, [r.node_id for r in key.replicas],
            )
        for replica in key.replicas:
            try:
                if replica.transport == 'memory':
                    node = lookup_node(replica.node_id, 'memory')
                    if node is None or node.closed:
                        continue
                    if node.exists_local(key.object_id):
                        return True
                elif replica.address is not None:
                    if self._tcp_client(
                        tuple(replica.address),
                    ).exists(key.object_id):
                        return True
            except NodeUnavailableError:
                continue
        return False

    def _evict_replicated(self, keys: Sequence[DIMKey]) -> None:
        if self.cluster is not None:
            candidates: dict[str, tuple[str, ...]] = {}
            for key in keys:
                assert key.replicas is not None
                self._adopt_replica_addresses(key)
                candidates[key.object_id] = tuple(
                    r.node_id for r in key.replicas
                )
            self.cluster.evict_batch(list(candidates), candidates)
            return
        for key in keys:
            assert key.replicas is not None
            for replica in key.replicas:
                try:
                    if replica.transport == 'memory':
                        node = lookup_node(replica.node_id, 'memory')
                        if node is not None and not node.closed:
                            node.evict_local(key.object_id)
                    elif replica.address is not None:
                        self._tcp_client(
                            tuple(replica.address),
                        ).delete(key.object_id)
                except NodeUnavailableError:
                    continue

    def _put_replicated(self, object_id: str, data: Any) -> DIMKey:
        assert self.cluster is not None
        owners = self.cluster.put(object_id, data)
        return DIMKey(
            object_id=object_id,
            node_id=owners[0],
            transport=self.transport,
            address=self._peer_addrs.get(owners[0]),
            replicas=self._replica_locations(owners),
        )

    def _parallel(self, tasks: 'list[Any]') -> list[Any]:
        """Run thunks concurrently (parallel streams for multi-node I/O).

        The executor is created lazily and kept for the client's lifetime —
        sharded transfers and multi-node batches must not pay thread
        spawn/join per operation (the thread churn this transport removes).
        """
        if len(tasks) == 1:
            return [tasks[0]()]
        with self._lock:
            pool = self._executor
            if pool is None:
                pool = ThreadPoolExecutor(
                    max_workers=_MAX_PARALLEL_TRANSFERS,
                    thread_name_prefix='dim-transfer',
                )
                self._executor = pool
        # Every task is awaited even after a failure (so a caller knows all
        # side effects have landed before it cleans up); the first error is
        # then re-raised.
        futures = [pool.submit(task) for task in tasks]
        results: list[Any] = []
        first_error: BaseException | None = None
        for future in futures:
            try:
                results.append(future.result())
            # repro: ignore[RP004] - every future is awaited before the
            # first error is re-raised after the loop
            except BaseException as e:  # noqa: BLE001 - re-raised below
                if first_error is None:
                    first_error = e
                results.append(None)
        if first_error is not None:
            raise first_error
        return results

    # -- sharding ------------------------------------------------------------ #
    @staticmethod
    def _split_segments(segments: list[memoryview], count: int) -> list[list[memoryview]]:
        """Split flat byte segments into ``count`` contiguous chunk views.

        Pure slicing — no bytes are copied; each chunk is a list of views
        into the caller's payload memory.
        """
        total = sum(len(s) for s in segments)
        base, extra = divmod(total, count)
        chunks: list[list[memoryview]] = []
        queue = list(segments)
        for i in range(count):
            want = base + (1 if i < extra else 0)
            chunk: list[memoryview] = []
            while want > 0:
                head = queue[0]
                if len(head) <= want:
                    chunk.append(head)
                    want -= len(head)
                    queue.pop(0)
                else:
                    chunk.append(head[:want])
                    queue[0] = head[want:]
                    want = 0
            chunks.append(chunk)
        return chunks

    def _put_shard(self, target: _Target, object_id: str, chunk: list[memoryview]) -> None:
        payload = SerializedObject(chunk)
        if self.transport == 'tcp' and target.address is not None:
            self._tcp_client(target.address).set(object_id, payload)
        else:
            get_local_node(target.node_id, self.transport).put_local(object_id, payload)

    def _put_sharded(self, object_id: str, data: Any, nbytes: int) -> DIMKey:
        targets = [self._resolve_peer(peer) for peer in self.peers]
        chunks = self._split_segments(segments_of(data), len(targets))
        shards = tuple(
            DIMShard(
                object_id=f'{object_id}.s{i}',
                node_id=target.node_id,
                transport=self.transport,
                address=target.address,
                nbytes=sum(len(piece) for piece in chunk),
            )
            for i, (target, chunk) in enumerate(zip(targets, chunks))
        )
        try:
            self._parallel(
                [
                    (lambda t=target, s=shard, c=chunk: self._put_shard(t, s.object_id, c))
                    for target, shard, chunk in zip(targets, shards, chunks)
                ],
            )
        except Exception:
            # The key never reaches the caller, so stripes already written
            # to healthy nodes would leak forever — best-effort clean-up.
            self._evict_shards(shards, best_effort=True)
            raise
        return DIMKey(
            object_id=object_id,
            node_id=self.node_id,
            transport=self.transport,
            address=self.local_node.address,
            shards=shards,
        )

    def _get_shard(self, shard: DIMShard) -> Any | None:
        if shard.transport == 'memory':
            node = lookup_node(shard.node_id, 'memory')
            if node is None:
                raise ConnectorError(
                    f'node {shard.node_id!r} is not reachable from this '
                    'process (memory-transport DIM nodes are process-local)',
                )
            return node.get_local(shard.object_id)
        if shard.address is None:
            raise ConnectorError(f'TCP DIM shard missing an address: {shard!r}')
        return self._tcp_client(shard.address).get(shard.object_id)

    @staticmethod
    def _assemble_shards(parts: Sequence[Any]) -> Optional[SerializedObject]:
        """Reassemble fetched stripes as segment views (``None`` if any miss)."""
        if any(part is None for part in parts):
            return None
        pieces: list[Any] = []
        for part in parts:
            if isinstance(part, SerializedObject):
                pieces.extend(part.pieces)
            else:
                pieces.append(part)
        return SerializedObject(pieces)

    def _get_sharded(self, key: DIMKey) -> Optional[SerializedObject]:
        assert key.shards is not None
        parts = self._parallel(
            [(lambda s=shard: self._get_shard(s)) for shard in key.shards],
        )
        return self._assemble_shards(parts)

    def _shardable(self, nbytes: int) -> bool:
        return (
            bool(self.peers)
            and self.shard_threshold > 0
            and nbytes >= self.shard_threshold
        )

    # -- operations ---------------------------------------------------------- #
    def put_local(self, object_id: str, data: Any) -> None:
        """Store on the local node, honouring this client's transport knobs.

        TCP writes go through this client's own pooled connection (so the
        configured ``pool_size``/``timeout`` apply) rather than the shared
        node's default client.
        """
        if self.transport == 'tcp' and self.local_node.address is not None:
            self._tcp_client(self.local_node.address).set(object_id, data)
        else:
            self.local_node.put_local(object_id, data)

    def _put_local_batch(self, items: Sequence[tuple[str, Any]]) -> None:
        if self.transport == 'tcp' and self.local_node.address is not None:
            self._tcp_client(self.local_node.address).mset(items)
        else:
            self.local_node.put_local_batch(items)

    def put(self, data) -> DIMKey:
        object_id = new_object_id()
        nbytes = payload_nbytes(data)
        if self._shardable(nbytes):
            return self._put_sharded(object_id, data, nbytes)
        if self.cluster is not None:
            return self._put_replicated(object_id, data)
        self.put_local(object_id, data)
        return DIMKey(
            object_id=object_id,
            node_id=self.node_id,
            transport=self.transport,
            address=self.local_node.address,
        )

    def get(self, key: DIMKey) -> Optional[bytes]:
        if key.shards:
            return self._get_sharded(key)
        if key.replicas:
            return self._get_replicated(key)
        if key.transport == 'memory':
            node = lookup_node(key.node_id, 'memory')
            if node is None:
                raise ConnectorError(
                    f'node {key.node_id!r} is not reachable from this process '
                    '(memory-transport DIM nodes are process-local)',
                )
            return node.get_local(key.object_id)
        if key.address is None:
            raise ConnectorError(f'TCP DIM key missing an address: {key!r}')
        return self._tcp_client(key.address).get(key.object_id)

    def exists(self, key: DIMKey) -> bool:
        if key.shards:
            return all(self._shard_exists(shard) for shard in key.shards)
        if key.replicas:
            return self._exists_replicated(key)
        if key.transport == 'memory':
            node = lookup_node(key.node_id, 'memory')
            return node is not None and node.exists_local(key.object_id)
        if key.address is None:
            return False
        return self._tcp_client(key.address).exists(key.object_id)

    def _shard_exists(self, shard: DIMShard) -> bool:
        if shard.transport == 'memory':
            node = lookup_node(shard.node_id, 'memory')
            return node is not None and node.exists_local(shard.object_id)
        if shard.address is None:
            return False
        return self._tcp_client(shard.address).exists(shard.object_id)

    def evict(self, key: DIMKey) -> None:
        if key.shards:
            self._evict_shards(key.shards)
            return
        if key.replicas:
            self._evict_replicated([key])
            return
        if key.transport == 'memory':
            node = lookup_node(key.node_id, 'memory')
            if node is not None:
                node.evict_local(key.object_id)
            return
        if key.address is not None:
            self._tcp_client(key.address).delete(key.object_id)

    def _evict_shards(
        self,
        shards: Iterable[DIMShard],
        by_address: 'dict[tuple[str, int], list[str]] | None' = None,
        *,
        best_effort: bool = False,
    ) -> None:
        """Evict shards, folding TCP deletions into ``by_address`` batches.

        ``by_address`` may be pre-seeded with plain-key deletions (see
        :meth:`evict_batch`) so each node still receives exactly one MDEL.
        With ``best_effort`` an unreachable node does not stop the clean-up
        of the remaining nodes (used when undoing a failed sharded put).
        """
        by_address = {} if by_address is None else by_address
        for shard in shards:
            if shard.transport == 'memory':
                node = lookup_node(shard.node_id, 'memory')
                if node is not None:
                    node.evict_local(shard.object_id)
            elif shard.address is not None:
                by_address.setdefault(tuple(shard.address), []).append(shard.object_id)
        first_error: ConnectorError | None = None
        for address, object_ids in by_address.items():
            try:
                self._tcp_client(address).mdel(object_ids)
            except ConnectorError as e:
                # Keep deleting on the remaining (healthy) nodes either
                # way; an unreachable node must not leak their stripes.
                if first_error is None:
                    first_error = e
        if first_error is not None and not best_effort:
            raise first_error

    # -- batch operations ----------------------------------------------------- #
    def put_batch(self, datas: Sequence[Any]) -> list[DIMKey]:
        """Store several payloads; small TCP payloads share one MSET."""
        keys: list[DIMKey | None] = [None] * len(datas)
        plain: list[tuple[int, str, Any]] = []
        for i, data in enumerate(datas):
            nbytes = payload_nbytes(data)
            if self._shardable(nbytes):
                keys[i] = self._put_sharded(new_object_id(), data, nbytes)
            else:
                plain.append((i, new_object_id(), data))
        if plain and self.cluster is not None:
            placements = self.cluster.put_batch(
                [(object_id, data) for _, object_id, data in plain],
            )
            for i, object_id, _ in plain:
                owners = placements[object_id]
                keys[i] = DIMKey(
                    object_id=object_id,
                    node_id=owners[0],
                    transport=self.transport,
                    address=self._peer_addrs.get(owners[0]),
                    replicas=self._replica_locations(owners),
                )
        elif plain:
            self._put_local_batch(
                [(object_id, data) for _, object_id, data in plain],
            )
            for i, object_id, _ in plain:
                keys[i] = DIMKey(
                    object_id=object_id,
                    node_id=self.node_id,
                    transport=self.transport,
                    address=self.local_node.address,
                )
        return keys  # type: ignore[return-value]

    def get_batch(self, keys: Sequence[DIMKey]) -> list[Any]:
        """Fetch several keys: one MGET per node, in parallel across nodes.

        Sharded keys contribute their individual stripe fetches to the same
        parallel round as the per-node MGETs (flat — no nested fan-out), so
        a batch of large striped objects overlaps their transfers instead of
        draining one object at a time.
        """
        results: list[Any] = [None] * len(keys)
        by_address: dict[tuple[str, int], list[tuple[int, str]]] = {}
        shard_parts: dict[int, list[Any]] = {}
        thunks: list[Any] = []
        for i, key in enumerate(keys):
            if key.shards:
                shard_parts[i] = [None] * len(key.shards)
                # One thunk per stripe keeps stripes of one object parallel:
                for j, shard in enumerate(key.shards):
                    thunks.append(
                        lambda i=i, j=j, s=shard: shard_parts[i].__setitem__(
                            j, self._get_shard(s),
                        ),
                    )
            elif key.replicas:
                # Replicated keys join the same parallel round; each gets
                # the full hedged/failover read path.
                thunks.append(
                    lambda i=i, k=key: results.__setitem__(
                        i, self._get_replicated(k),
                    ),
                )
            elif key.transport == 'memory' or key.address is None:
                results[i] = self.get(key)
            else:
                by_address.setdefault(tuple(key.address), []).append(
                    (i, key.object_id),
                )

        def fetch(address: tuple[str, int], wanted: list[tuple[int, str]]) -> None:
            values = self._tcp_client(address).mget(
                [object_id for _, object_id in wanted],
            )
            for (i, _), value in zip(wanted, values):
                results[i] = value

        thunks.extend(
            (lambda a=address, w=wanted: fetch(a, w))
            for address, wanted in by_address.items()
        )
        if thunks:
            self._parallel(thunks)
        for i, parts in shard_parts.items():
            results[i] = self._assemble_shards(parts)
        return results

    def evict_batch(self, keys: Sequence[DIMKey]) -> None:
        """Evict several keys: one MDEL per node."""
        by_address: dict[tuple[str, int], list[str]] = {}
        shards: list[DIMShard] = []
        replicated: list[DIMKey] = []
        for key in keys:
            if key.shards:
                shards.extend(key.shards)
            elif key.replicas:
                replicated.append(key)
            elif key.transport == 'memory':
                node = lookup_node(key.node_id, 'memory')
                if node is not None:
                    node.evict_local(key.object_id)
            elif key.address is not None:
                by_address.setdefault(tuple(key.address), []).append(key.object_id)
        if replicated:
            self._evict_replicated(replicated)
        self._evict_shards(shards, by_address)

    def close(self) -> None:
        if self.rebalancer is not None:
            self.rebalancer.stop()
        if self.cluster is not None:
            self.cluster.close()
        with self._lock:
            for client in self._tcp_clients.values():
                client.close()
            self._tcp_clients.clear()
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=False)
