"""Client-side routing for the distributed in-memory store.

A :class:`DIMClient` is bound to the local node (where it puts new objects)
and can fetch objects from any node named in a :class:`DIMKey`: memory nodes
are reached through the in-process registry (standing in for RDMA reads of
remote memory), TCP nodes through a cached socket client per address.
"""
from __future__ import annotations

import threading
from typing import Optional

from repro.connectors.protocol import new_object_id
from repro.dim.node import DIMKey
from repro.dim.node import get_local_node
from repro.dim.node import lookup_node
from repro.exceptions import ConnectorError
from repro.kvserver.client import KVClient

__all__ = ['DIMClient']


class DIMClient:
    """Puts objects on the local node and gets them from any node."""

    def __init__(self, node_id: str, transport: str = 'memory') -> None:
        self.node_id = node_id
        self.transport = transport
        self.local_node = get_local_node(node_id, transport)
        self._tcp_clients: dict[tuple[str, int], KVClient] = {}
        self._lock = threading.Lock()

    # -- helpers ------------------------------------------------------------ #
    def _tcp_client(self, address: tuple[str, int]) -> KVClient:
        with self._lock:
            client = self._tcp_clients.get(address)
            if client is None:
                client = KVClient(*address)
                self._tcp_clients[address] = client
            return client

    # -- operations ---------------------------------------------------------- #
    def put(self, data) -> DIMKey:
        object_id = new_object_id()
        self.local_node.put_local(object_id, data)
        return DIMKey(
            object_id=object_id,
            node_id=self.node_id,
            transport=self.transport,
            address=self.local_node.address,
        )

    def get(self, key: DIMKey) -> Optional[bytes]:
        if key.transport == 'memory':
            node = lookup_node(key.node_id, 'memory')
            if node is None:
                raise ConnectorError(
                    f'node {key.node_id!r} is not reachable from this process '
                    '(memory-transport DIM nodes are process-local)',
                )
            return node.get_local(key.object_id)
        if key.address is None:
            raise ConnectorError(f'TCP DIM key missing an address: {key!r}')
        return self._tcp_client(key.address).get(key.object_id)

    def exists(self, key: DIMKey) -> bool:
        if key.transport == 'memory':
            node = lookup_node(key.node_id, 'memory')
            return node is not None and node.exists_local(key.object_id)
        if key.address is None:
            return False
        return self._tcp_client(key.address).exists(key.object_id)

    def evict(self, key: DIMKey) -> None:
        if key.transport == 'memory':
            node = lookup_node(key.node_id, 'memory')
            if node is not None:
                node.evict_local(key.object_id)
            return
        if key.address is not None:
            self._tcp_client(key.address).delete(key.object_id)

    def close(self) -> None:
        with self._lock:
            for client in self._tcp_clients.values():
                client.close()
            self._tcp_clients.clear()
