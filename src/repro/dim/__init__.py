"""Distributed in-memory (DIM) store substrate.

The paper's Margo, UCX and ZMQ connectors spawn a storage server on each
node the first time a connector is created there; the set of spawned servers
forms an elastic distributed in-memory store, and keys embed the address of
the server holding the object so any client can fetch it directly
(Section 4.1.3).

Real Mochi-Margo/UCX RDMA stacks require HPC network fabrics, so this
substrate provides two transports that exercise the same architecture:

* ``'memory'`` — a process-global registry of per-node dictionaries standing
  in for RDMA-accessible remote memory (zero-copy, negligible software
  overhead).  Used by the Margo and UCX connector flavours.
* ``'tcp'`` — a real TCP server per node (the SimKV server), used by the ZMQ
  connector flavour and by any test that wants genuine sockets.
"""
from repro.dim.node import DIMKey
from repro.dim.node import DIMNode
from repro.dim.node import DIMReplica
from repro.dim.node import DIMShard
from repro.dim.node import get_local_node
from repro.dim.node import lookup_node
from repro.dim.node import reset_nodes
from repro.dim.client import DEFAULT_SHARD_THRESHOLD
from repro.dim.client import DIMClient

__all__ = [
    'DEFAULT_SHARD_THRESHOLD',
    'DIMClient',
    'DIMKey',
    'DIMNode',
    'DIMReplica',
    'DIMShard',
    'get_local_node',
    'lookup_node',
    'reset_nodes',
]
