"""Per-node storage servers of the distributed in-memory store."""
from __future__ import annotations

import threading
from typing import Any
from typing import NamedTuple
from typing import Sequence

from repro.kvserver.server import KVServer
from repro.serialize.buffers import freeze_payload

__all__ = [
    'DIMKey',
    'DIMNode',
    'DIMReplica',
    'DIMShard',
    'get_local_node',
    'reset_nodes',
    'lookup_node',
]


class DIMReplica(NamedTuple):
    """One replica location of a cluster-placed object.

    Attributes:
        node_id: logical node name holding this copy.
        transport: ``'memory'`` or ``'tcp'``.
        address: ``(host, port)`` for TCP nodes, ``None`` for memory nodes.
    """

    node_id: str
    transport: str
    address: tuple[str, int] | None


class DIMShard(NamedTuple):
    """One stripe of a sharded object and the node server holding it.

    Attributes:
        object_id: shard-unique object identifier.
        node_id: logical node name the shard lives on.
        transport: ``'memory'`` or ``'tcp'``.
        address: ``(host, port)`` for TCP nodes, ``None`` for memory nodes.
        nbytes: payload size of this shard.
    """

    object_id: str
    node_id: str
    transport: str
    address: tuple[str, int] | None
    nbytes: int


class DIMKey(NamedTuple):
    """Key identifying an object and the node server holding it.

    Attributes:
        object_id: unique object identifier.
        node_id: logical node name the object lives on.
        transport: ``'memory'`` or ``'tcp'``.
        address: ``(host, port)`` for TCP nodes, ``None`` for memory nodes.
        shards: for large objects striped across nodes, the ordered shard
            locations whose concatenation is the object (``None`` for plain
            single-node objects).
        replicas: for cluster-placed objects, the replica locations the
            object was written to, primary first (``None`` for legacy
            single-copy objects).  Readers treat these as *hints*: after a
            crash the live copies may have migrated, so the consistent-hash
            ring's current owners are also consulted.
    """

    object_id: str
    node_id: str
    transport: str
    address: tuple[str, int] | None
    shards: tuple[DIMShard, ...] | None = None
    replicas: tuple[DIMReplica, ...] | None = None


class DIMNode:
    """A single node's storage server.

    ``memory`` nodes store objects in a dictionary owned by this process;
    ``tcp`` nodes additionally expose them over a real socket so that other
    processes (or concurrency tests) can reach them.
    """

    def __init__(self, node_id: str, transport: str = 'memory') -> None:
        if transport not in ('memory', 'tcp'):
            raise ValueError(f'unknown DIM transport {transport!r}')
        self.node_id = node_id
        self.transport = transport
        #: True once :meth:`close` ran — cluster backends treat a closed
        #: node as crashed (its data is gone), never silently empty.
        self.closed = False
        self._data: dict[str, Any] = {}
        self._lock = threading.Lock()
        self._server: KVServer | None = None
        self._client: Any = None
        if transport == 'tcp':
            self._server = KVServer()
            self._server.start()

    # -- addressing ------------------------------------------------------- #
    @property
    def address(self) -> tuple[str, int] | None:
        if self._server is None:
            return None
        assert self._server.port is not None
        return (self._server.host, self._server.port)

    def _own_client(self):
        """Persistent pipelined client to this node's own server (tcp only)."""
        client = self._client
        if client is None:
            with self._lock:
                if self._client is None:
                    from repro.kvserver.client import KVClient

                    host, port = self.address  # type: ignore[misc]
                    self._client = KVClient(host, port)
                client = self._client
        return client

    # -- local (RDMA-like) access ------------------------------------------ #
    def put_local(self, object_id: str, data: Any) -> None:
        if self.transport == 'tcp':
            # Store through the server so remote clients see the object; the
            # KV client sends the payload's segments out-of-band (no copy).
            self._own_client().set(object_id, data)
        else:
            with self._lock:
                self._data[object_id] = freeze_payload(data)

    def put_local_batch(self, items: Sequence[tuple[str, Any]]) -> None:
        """Store several objects — one MSET round trip for TCP nodes."""
        if self.transport == 'tcp':
            self._own_client().mset(items)
        else:
            frozen = [(object_id, freeze_payload(data)) for object_id, data in items]
            with self._lock:
                for object_id, data in frozen:
                    self._data[object_id] = data

    def get_local(self, object_id: str) -> Any | None:
        with self._lock:
            return self._data.get(object_id)

    def exists_local(self, object_id: str) -> bool:
        with self._lock:
            return object_id in self._data

    def evict_local(self, object_id: str) -> None:
        with self._lock:
            self._data.pop(object_id, None)

    def keys_local(self) -> list[str]:
        """Every object id stored here (cluster rebalancer enumeration)."""
        with self._lock:
            return list(self._data)

    def close(self) -> None:
        self.closed = True
        if self._client is not None:
            self._client.close()
            self._client = None
        if self._server is not None:
            self._server.stop()
        with self._lock:
            self._data.clear()

    def __len__(self) -> int:
        if self.transport == 'tcp' and self._server is not None:
            return len(self._server)
        with self._lock:
            return len(self._data)


# Process-global registry of node servers: one per (node_id, transport),
# created lazily the first time a connector on that node needs one.
_NODES: dict[tuple[str, str], DIMNode] = {}
_NODES_LOCK = threading.Lock()


def get_local_node(node_id: str, transport: str = 'memory') -> DIMNode:
    """Return (creating if necessary) the storage server for ``node_id``.

    A node that was closed (crashed or shut down) is replaced by a fresh,
    empty instance — rejoining a cluster after a crash starts from zero
    rather than resurrecting a half-dead server.
    """
    with _NODES_LOCK:
        node = _NODES.get((node_id, transport))
        if node is None or node.closed:
            node = DIMNode(node_id, transport)
            _NODES[(node_id, transport)] = node
        return node


def lookup_node(node_id: str, transport: str) -> DIMNode | None:
    """Return the node server if it exists in this process, else ``None``."""
    with _NODES_LOCK:
        return _NODES.get((node_id, transport))


def reset_nodes() -> None:
    """Close and forget every node server (test isolation)."""
    with _NODES_LOCK:
        for node in _NODES.values():
            node.close()
        _NODES.clear()
