"""A small, thread-safe LRU cache.

The :class:`~repro.store.Store` caches *deserialized* objects keyed by
connector key so that repeatedly resolving proxies of the same object in one
process performs neither communication nor deserialization (Section 3.5 of
the paper).  The cache is deliberately simple: a bounded ordered dict with a
lock, plus hit/miss statistics used by the Store metrics and the ablation
benchmarks.

Alongside the entry bound, an optional ``max_bytes`` bound caps the
*resident bytes* of cached values (sizes are estimated with a best-effort
``sizeof``).  An individual value larger than ``max_bytes`` is simply not
cached — a multi-GB proxy resolution cannot silently evict the entire
working set.
"""
from __future__ import annotations

import sys
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any
from typing import Callable
from typing import Hashable
from typing import Iterator

__all__ = ['LRUCache', 'CacheStats', 'estimate_nbytes']

_MISSING = object()


def estimate_nbytes(value: Any) -> int:
    """Best-effort resident size of a cached value in bytes.

    Buffer-like objects report their true payload size (``nbytes``/``len``);
    everything else falls back to ``sys.getsizeof`` — shallow, but cheap and
    monotone enough to bound a cache.
    """
    nbytes = getattr(value, 'nbytes', None)
    if isinstance(nbytes, int):
        return nbytes
    if isinstance(value, (bytes, bytearray)):
        return len(value)
    try:
        return sys.getsizeof(value)
    except TypeError:  # pragma: no cover - exotic objects
        return 0


@dataclass
class CacheStats:
    """Counters describing cache effectiveness."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of accesses served from the cache (0.0 when unused)."""
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses


class LRUCache:
    """Least-recently-used cache bounded by entries and (optionally) bytes.

    Args:
        maxsize: maximum number of entries; ``0`` disables caching entirely
            (every lookup misses) while keeping the same interface.
        max_bytes: optional bound on total estimated resident bytes.  Values
            individually larger than the bound are not cached at all rather
            than evicting everything else.
        sizeof: optional override for the per-value size estimate.
    """

    def __init__(
        self,
        maxsize: int = 16,
        *,
        max_bytes: int | None = None,
        sizeof: Callable[[Any], int] | None = None,
    ) -> None:
        if maxsize < 0:
            raise ValueError('maxsize must be non-negative')
        if max_bytes is not None and max_bytes < 0:
            raise ValueError('max_bytes must be non-negative')
        self.maxsize = maxsize
        self.max_bytes = max_bytes
        self._sizeof = sizeof if sizeof is not None else estimate_nbytes
        self._data: OrderedDict[Hashable, Any] = OrderedDict()
        self._sizes: dict[Hashable, int] = {}
        self._resident_bytes = 0
        self._lock = threading.Lock()
        self.stats = CacheStats()

    @property
    def resident_bytes(self) -> int:
        """Estimated bytes currently held by cached values."""
        with self._lock:
            return self._resident_bytes

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Return the cached value for ``key`` or ``default``; counts a hit/miss."""
        with self._lock:
            value = self._data.get(key, _MISSING)
            if value is _MISSING:
                self.stats.misses += 1
                return default
            self._data.move_to_end(key)
            self.stats.hits += 1
            return value

    def exists(self, key: Hashable) -> bool:
        """Return ``True`` if ``key`` is cached (does not update recency/stats)."""
        with self._lock:
            return key in self._data

    def _drop(self, key: Hashable) -> None:
        self._data.pop(key, None)
        self._resident_bytes -= self._sizes.pop(key, 0)

    def set(self, key: Hashable, value: Any) -> None:
        """Insert or update ``key``; evicts least recently used entries while
        either bound (entries or bytes) is exceeded."""
        if self.maxsize == 0:
            return
        size = self._sizeof(value)
        with self._lock:
            if self.max_bytes is not None and size > self.max_bytes:
                # Caching this value would evict the whole working set;
                # leave the cache as-is (and drop any stale entry).
                self._drop(key)
                return
            if key in self._data:
                self._data.move_to_end(key)
                self._resident_bytes -= self._sizes.get(key, 0)
            self._data[key] = value
            self._sizes[key] = size
            self._resident_bytes += size
            while len(self._data) > self.maxsize or (
                self.max_bytes is not None
                and self._resident_bytes > self.max_bytes
                and len(self._data) > 1
            ):
                evicted_key, _ = self._data.popitem(last=False)
                self._resident_bytes -= self._sizes.pop(evicted_key, 0)
                self.stats.evictions += 1

    def evict(self, key: Hashable) -> bool:
        """Remove ``key`` from the cache; returns whether it was present."""
        with self._lock:
            present = key in self._data
            if present:
                self._drop(key)
            return present

    def clear(self) -> None:
        """Remove every cached entry (statistics are preserved)."""
        with self._lock:
            self._data.clear()
            self._sizes.clear()
            self._resident_bytes = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: object) -> bool:
        return self.exists(key)

    def __iter__(self) -> Iterator[Hashable]:
        with self._lock:
            return iter(list(self._data.keys()))
