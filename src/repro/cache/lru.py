"""A small, thread-safe LRU cache.

The :class:`~repro.store.Store` caches *deserialized* objects keyed by
connector key so that repeatedly resolving proxies of the same object in one
process performs neither communication nor deserialization (Section 3.5 of
the paper).  The cache is deliberately simple: a bounded ordered dict with a
lock, plus hit/miss statistics used by the Store metrics and the ablation
benchmarks.
"""
from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any
from typing import Hashable
from typing import Iterator

__all__ = ['LRUCache', 'CacheStats']

_MISSING = object()


@dataclass
class CacheStats:
    """Counters describing cache effectiveness."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of accesses served from the cache (0.0 when unused)."""
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses


class LRUCache:
    """Least-recently-used cache with a fixed maximum number of entries.

    Args:
        maxsize: maximum number of entries; ``0`` disables caching entirely
            (every lookup misses) while keeping the same interface.
    """

    def __init__(self, maxsize: int = 16) -> None:
        if maxsize < 0:
            raise ValueError('maxsize must be non-negative')
        self.maxsize = maxsize
        self._data: OrderedDict[Hashable, Any] = OrderedDict()
        self._lock = threading.Lock()
        self.stats = CacheStats()

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Return the cached value for ``key`` or ``default``; counts a hit/miss."""
        with self._lock:
            value = self._data.get(key, _MISSING)
            if value is _MISSING:
                self.stats.misses += 1
                return default
            self._data.move_to_end(key)
            self.stats.hits += 1
            return value

    def exists(self, key: Hashable) -> bool:
        """Return ``True`` if ``key`` is cached (does not update recency/stats)."""
        with self._lock:
            return key in self._data

    def set(self, key: Hashable, value: Any) -> None:
        """Insert or update ``key``; evicts the least recently used entry if full."""
        if self.maxsize == 0:
            return
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
            self._data[key] = value
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)
                self.stats.evictions += 1

    def evict(self, key: Hashable) -> bool:
        """Remove ``key`` from the cache; returns whether it was present."""
        with self._lock:
            return self._data.pop(key, _MISSING) is not _MISSING

    def clear(self) -> None:
        """Remove every cached entry (statistics are preserved)."""
        with self._lock:
            self._data.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: object) -> bool:
        return self.exists(key)

    def __iter__(self) -> Iterator[Hashable]:
        with self._lock:
            return iter(list(self._data.keys()))
