"""Caching utilities used by stores to avoid repeated gets and deserializations."""
from repro.cache.lru import CacheStats
from repro.cache.lru import LRUCache
from repro.cache.lru import estimate_nbytes

__all__ = ['CacheStats', 'LRUCache', 'estimate_nbytes']
