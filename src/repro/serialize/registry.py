"""Registry of custom per-type serializers.

Applications with types that pickle poorly (or not at all) can register a
named ``(serializer, deserializer)`` pair keyed by the object's type.  The
default :func:`repro.serialize.serialize` routine consults the registry
before its built-in fast paths, so registered types are handled everywhere a
Store serializes data.

The registration is process-local; a proxy serialized with a custom
serializer can only be resolved in processes that registered the same name,
mirroring the behaviour of registering custom serializers with a ProxyStore
Store.
"""
from __future__ import annotations

import threading
from typing import Any
from typing import Callable
from typing import Optional
from typing import Tuple

SerializerFn = Callable[[Any], bytes]
DeserializerFn = Callable[[bytes], Any]
_Entry = Tuple[str, SerializerFn, DeserializerFn]

__all__ = [
    'SerializerRegistry',
    'default_registry',
    'register_serializer',
    'unregister_serializer',
]


class SerializerRegistry:
    """Thread-safe mapping of names and types to serializer pairs."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._by_name: dict[str, _Entry] = {}
        self._by_type: dict[type, str] = {}
        #: Monotonic counter bumped on every mutation.  ``serialize`` keys its
        #: per-type route cache on this so registrations invalidate cached
        #: dispatch decisions without a registry lookup per call.
        self.version = 0

    def register(
        self,
        name: str,
        kind: type,
        serializer: SerializerFn,
        deserializer: DeserializerFn,
        *,
        overwrite: bool = False,
    ) -> None:
        """Register ``serializer``/``deserializer`` for objects of type ``kind``.

        Args:
            name: unique identifier embedded in the serialized payload.
            kind: exact type (subclasses are also matched) to serialize.
            serializer: callable converting an instance to bytes.
            deserializer: callable converting those bytes back to an instance.
            overwrite: replace an existing registration with the same name.

        Raises:
            ValueError: if ``name`` is already registered and ``overwrite`` is
                false, or if ``name`` contains a newline (reserved as the
                payload delimiter).
        """
        if '\n' in name:
            raise ValueError('serializer names may not contain newlines')
        with self._lock:
            if name in self._by_name and not overwrite:
                raise ValueError(f'serializer {name!r} is already registered')
            self._by_name[name] = (name, serializer, deserializer)
            self._by_type[kind] = name
            self.version += 1

    def unregister(self, name: str) -> None:
        """Remove the registration named ``name`` (no-op if absent)."""
        with self._lock:
            self._by_name.pop(name, None)
            stale = [t for t, n in self._by_type.items() if n == name]
            for t in stale:
                del self._by_type[t]
            self.version += 1

    def get(self, name: str) -> Optional[_Entry]:
        """Return the entry registered under ``name`` or ``None``."""
        with self._lock:
            return self._by_name.get(name)

    def find(self, obj: Any) -> Optional[_Entry]:
        """Return the entry whose registered type matches ``type(obj)``.

        Exact type matches are preferred; otherwise the first registered type
        that ``obj`` is an instance of wins.
        """
        with self._lock:
            name = self._by_type.get(type(obj))
            if name is not None:
                return self._by_name.get(name)
            for kind, name in self._by_type.items():
                if isinstance(obj, kind):
                    return self._by_name.get(name)
        return None

    def clear(self) -> None:
        """Remove every registration (used by tests)."""
        with self._lock:
            self._by_name.clear()
            self._by_type.clear()
            self.version += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._by_name)

    def __contains__(self, name: object) -> bool:
        with self._lock:
            return name in self._by_name


default_registry = SerializerRegistry()
"""Process-global registry consulted by :func:`repro.serialize.serialize`."""


def register_serializer(
    name: str,
    kind: type,
    serializer: SerializerFn,
    deserializer: DeserializerFn,
    *,
    overwrite: bool = False,
) -> None:
    """Register a custom serializer in the process-global registry."""
    default_registry.register(
        name, kind, serializer, deserializer, overwrite=overwrite,
    )


def unregister_serializer(name: str) -> None:
    """Remove a custom serializer from the process-global registry."""
    default_registry.unregister(name)
