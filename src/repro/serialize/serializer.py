"""Default object serialization.

The :class:`~repro.store.Store` serializes Python objects to byte strings
before handing them to a :class:`~repro.connectors.Connector` (which only
operates on bytes).  The default serializer uses cheap fast paths for
``bytes``, ``str`` and NumPy arrays, and falls back to pickle for everything
else.  Custom per-type serializers can be registered through
:mod:`repro.serialize.registry`.

Wire format: a one-byte identifier followed by the payload.

====  =======================================================
byte  payload
====  =======================================================
0x01  raw bytes (no transformation)
0x02  UTF-8 encoded ``str``
0x03  NumPy array in ``.npy`` format (``numpy.save``)
0x04  payload produced by a registered custom serializer; the
      identifier name (UTF-8) and a newline precede the payload
0x05  pickle (highest protocol)
====  =======================================================
"""
from __future__ import annotations

import io
import pickle
from typing import Any
from typing import Union

import numpy as np

from repro.exceptions import SerializationError

BytesLike = Union[bytes, bytearray, memoryview]

_IDENT_BYTES = b'\x01'
_IDENT_STR = b'\x02'
_IDENT_NUMPY = b'\x03'
_IDENT_CUSTOM = b'\x04'
_IDENT_PICKLE = b'\x05'

__all__ = ['serialize', 'deserialize', 'BytesLike']


def serialize(obj: Any) -> bytes:
    """Serialize ``obj`` to bytes using the default scheme.

    Raises:
        SerializationError: if the object cannot be serialized (e.g. pickling
            fails for an unpicklable object).
    """
    # Import here to avoid a circular import at module load time: the registry
    # module imports nothing from here, but user code commonly imports both.
    from repro.proxy.proxy import Proxy
    from repro.serialize.registry import default_registry

    # Proxies are handled before any isinstance-based dispatch: isinstance
    # checks would transparently resolve the proxy (and then serialize the
    # full target), whereas the whole point of communicating a proxy is that
    # only its factory travels.  Pickling a proxy does exactly that.
    if issubclass(type(obj), Proxy):
        return _IDENT_PICKLE + pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)

    custom = default_registry.find(obj)
    if custom is not None:
        name, serializer, _ = custom
        try:
            payload = serializer(obj)
        except Exception as e:  # noqa: BLE001
            raise SerializationError(
                f'Registered serializer {name!r} failed for '
                f'{type(obj).__name__}: {e}',
            ) from e
        if not isinstance(payload, (bytes, bytearray, memoryview)):
            raise SerializationError(
                f'Registered serializer {name!r} must return bytes, got '
                f'{type(payload).__name__}',
            )
        return _IDENT_CUSTOM + name.encode('utf-8') + b'\n' + bytes(payload)

    if isinstance(obj, bytes):
        return _IDENT_BYTES + obj
    if isinstance(obj, (bytearray, memoryview)):
        return _IDENT_BYTES + bytes(obj)
    if isinstance(obj, str):
        return _IDENT_STR + obj.encode('utf-8')
    if isinstance(obj, np.ndarray):
        buffer = io.BytesIO()
        np.save(buffer, obj, allow_pickle=False)
        return _IDENT_NUMPY + buffer.getvalue()
    try:
        return _IDENT_PICKLE + pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as e:  # noqa: BLE001
        raise SerializationError(
            f'Object of type {type(obj).__name__} could not be pickled: {e}',
        ) from e


def deserialize(data: BytesLike) -> Any:
    """Inverse of :func:`serialize`.

    Raises:
        SerializationError: if ``data`` is not bytes produced by
            :func:`serialize` or the payload cannot be decoded.
    """
    from repro.serialize.registry import default_registry

    if not isinstance(data, (bytes, bytearray, memoryview)):
        raise SerializationError(
            f'deserialize expects bytes, got {type(data).__name__}',
        )
    data = bytes(data)
    if len(data) == 0:
        raise SerializationError('cannot deserialize an empty byte string')

    identifier, payload = data[:1], data[1:]
    if identifier == _IDENT_BYTES:
        return payload
    if identifier == _IDENT_STR:
        return payload.decode('utf-8')
    if identifier == _IDENT_NUMPY:
        buffer = io.BytesIO(payload)
        return np.load(buffer, allow_pickle=False)
    if identifier == _IDENT_CUSTOM:
        name_bytes, _, body = payload.partition(b'\n')
        name = name_bytes.decode('utf-8')
        entry = default_registry.get(name)
        if entry is None:
            raise SerializationError(
                f'No serializer registered under name {name!r}; it must be '
                'registered in the consuming process as well',
            )
        _, _, deserializer = entry
        try:
            return deserializer(body)
        except Exception as e:  # noqa: BLE001
            raise SerializationError(
                f'Registered deserializer {name!r} failed: {e}',
            ) from e
    if identifier == _IDENT_PICKLE:
        try:
            return pickle.loads(payload)
        except Exception as e:  # noqa: BLE001
            raise SerializationError(f'Unpickling failed: {e}') from e
    raise SerializationError(
        f'Unknown serialization identifier byte: {identifier!r}',
    )
