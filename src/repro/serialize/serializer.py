"""Default object serialization (zero-copy wire format + small-frame path).

The :class:`~repro.store.Store` serializes Python objects before handing them
to a :class:`~repro.connectors.Connector`.  The default serializer uses cheap
fast paths for ``bytes``, ``str`` and NumPy arrays and falls back to pickle
for everything else.  Custom per-type serializers can be registered through
:mod:`repro.serialize.registry`.

``serialize`` returns one of two containers depending on payload size, both
carrying the *same* wire format:

* **Small payloads** (below :func:`small_frame_threshold`, default 16 KiB)
  come back as plain ``bytes``: one header byte plus the payload, already
  contiguous.  At this scale a single memcpy is cheaper than the segment
  bookkeeping, so the small path skips :class:`SerializedObject` entirely —
  this is what makes the 1 KB regime faster than the legacy serializer.
* **Large payloads** come back as a
  :class:`~repro.serialize.buffers.SerializedObject`: a one-byte identifier
  header plus buffer segments that alias the source object's memory wherever
  possible (raw byte payloads, NumPy array buffers, pickle protocol 5
  out-of-band buffers).  Joining the segments yields the contiguous wire
  bytes; buffer-aware connectors skip the join entirely.

Because both containers serialize to identical wire bytes, readers never
need to know which path the writer took: ``deserialize`` dispatches on the
identifier byte alone, so small frames, joined segment payloads, and
pre-buffer legacy payloads all coexist on the wire.

Dispatch itself is cached per exact type (invalidated whenever the custom
serializer registry changes), so steady-state traffic skips the proxy
subclass check, the registry lookup, and the isinstance chain.

Wire format (the small frame, or the concatenation of the segments): a
one-byte identifier followed by the payload.

====  =======================================================
byte  payload
====  =======================================================
0x01  raw bytes (no transformation)
0x02  UTF-8 encoded ``str``
0x03  NumPy array in ``.npy`` format (header + raw array data)
0x04  payload produced by a registered custom serializer; the
      identifier name (UTF-8) and a newline precede the payload
0x05  pickle (in-band, highest protocol)
0x06  pickle protocol 5 with out-of-band buffers::

          uint32 n  |  uint64 pickle_len  |  n x uint64 buffer_len
          pickle bytes  |  buffer 0  |  ...  |  buffer n-1
====  =======================================================

``deserialize`` accepts ``bytes``, ``bytearray``, ``memoryview`` (and any
other single contiguous buffer, e.g. an ``mmap``) or a ``SerializedObject``
and never materializes large input up front: payloads are parsed through
``memoryview`` slices, NumPy arrays are reconstructed with ``np.frombuffer``
over the received buffer, and pickle-5 buffers are handed to
``pickle.loads(..., buffers=...)`` as views.  (Sub-threshold ``bytes`` input
is instead sliced directly — at that scale the copy is cheaper than the
``memoryview`` indirection.)  Deserialized arrays on the zero-copy path are
uniformly **read-only** — they alias storage they do not own (received
buffers, memory-mapped files, a same-process producer's memory); call
``np.copy`` on a fetched array before mutating it.
"""
from __future__ import annotations

import ast
import io
import os
import pickle
import struct
from typing import Any

import numpy as np

from repro.exceptions import SerializationError
from repro.serialize.buffers import BytesLike
from repro.serialize.buffers import SerializedObject
from repro.serialize.registry import default_registry

# The Proxy class is imported lazily (repro.proxy imports this module) and
# cached: the subclass check runs whenever a type is first classified.
_PROXY_CLS: type | None = None

_IDENT_BYTES = b'\x01'
_IDENT_STR = b'\x02'
_IDENT_NUMPY = b'\x03'
_IDENT_CUSTOM = b'\x04'
_IDENT_PICKLE = b'\x05'
_IDENT_PICKLE5 = b'\x06'

_U32 = struct.Struct('>I')
_U64 = struct.Struct('>Q')

_PICKLE_PROTOCOL = pickle.HIGHEST_PROTOCOL
_pickle_dumps = pickle.dumps
_pickle_loads = pickle.loads

__all__ = [
    'serialize',
    'deserialize',
    'small_frame_threshold',
    'set_small_frame_threshold',
    'BytesLike',
    'SerializedObject',
]


# --------------------------------------------------------------------------- #
# Small-frame threshold
# --------------------------------------------------------------------------- #
_DEFAULT_SMALL_FRAME_THRESHOLD = 16 * 1024


def _initial_threshold() -> int:
    raw = os.environ.get('REPRO_SMALL_FRAME_THRESHOLD')
    if raw is None:
        return _DEFAULT_SMALL_FRAME_THRESHOLD
    try:
        return max(0, int(raw))
    except ValueError:
        return _DEFAULT_SMALL_FRAME_THRESHOLD


_small_threshold = _initial_threshold()


def small_frame_threshold() -> int:
    """Return the current small-frame threshold in bytes.

    Payloads strictly smaller than this are serialized as one compact
    ``bytes`` frame instead of a segmented :class:`SerializedObject`.  The
    initial value is 16 KiB, overridable through the
    ``REPRO_SMALL_FRAME_THRESHOLD`` environment variable.
    """
    return _small_threshold


def set_small_frame_threshold(nbytes: int) -> int:
    """Set the small-frame threshold; returns the previous value.

    ``0`` disables the small-frame path entirely (every payload becomes a
    :class:`SerializedObject`, the pre-threshold behaviour).  The threshold
    only affects which *container* the writer produces — the wire bytes are
    identical either way, so readers need no coordination.
    """
    global _small_threshold
    previous = _small_threshold
    _small_threshold = max(0, int(nbytes))
    return previous


# --------------------------------------------------------------------------- #
# Per-type dispatch routes
# --------------------------------------------------------------------------- #
# Route codes cached per exact type.  _R_PICKLE starts optimistic — a plain
# in-band dumps with no buffer_callback, which is exactly the minimal work
# the legacy serializer did — and is upgraded (sticky) to _R_PICKLE_SIEVED
# the first time an instance overflows the threshold, after which the type
# pays the buffer-sieve callback to keep large buffers out-of-band.
_R_BYTES = 0
_R_BYTEVIEW = 1
_R_STR = 2
_R_NDARRAY = 3
_R_PROXY = 4
_R_PICKLE = 5
_R_PICKLE_SIEVED = 6
_R_CUSTOM = 7

_routes: dict[type, int] = {}
_routes_version = -1


def _classify(obj: Any) -> int:
    """Slow-path route classification for a type not yet in the cache."""
    global _PROXY_CLS
    if _PROXY_CLS is None:
        # Deferred to avoid a circular import at module load time.
        from repro.proxy.proxy import Proxy

        _PROXY_CLS = Proxy

    tp = type(obj)
    # Proxies are handled before any isinstance-based dispatch: isinstance
    # checks would transparently resolve the proxy (and then serialize the
    # full target), whereas the whole point of communicating a proxy is that
    # only its factory travels.  Pickling a proxy does exactly that.
    if issubclass(tp, _PROXY_CLS):
        return _R_PROXY
    if default_registry.find(obj) is not None:
        return _R_CUSTOM
    if issubclass(tp, bytes):
        return _R_BYTES
    if issubclass(tp, (bytearray, memoryview)):
        return _R_BYTEVIEW
    if issubclass(tp, str):
        return _R_STR
    if issubclass(tp, np.ndarray):
        return _R_NDARRAY
    return _R_PICKLE


class _NonContiguousBuffer(Exception):
    """Raised inside the buffer sieve to abort an out-of-band dumps."""


class _BufferSieve:
    """pickle-5 ``buffer_callback`` that routes buffers by size.

    Buffers below the small-frame threshold are kept in-band (returning a
    truthy value tells the pickler to serialize the buffer inline), so tiny
    arrays inside an object do not explode into per-buffer segments; buffers
    at or above the threshold are captured for the out-of-band 0x06 layout.
    """

    __slots__ = ('threshold', 'oob')

    def __init__(self, threshold: int) -> None:
        self.threshold = threshold
        self.oob: list[memoryview] = []

    def __call__(self, buf: pickle.PickleBuffer) -> bool:
        try:
            raw = buf.raw()
        except BufferError:
            # A contributing buffer is non-contiguous; the caller falls back
            # to a fully in-band dumps.
            raise _NonContiguousBuffer from None
        if raw.nbytes < self.threshold:
            return True
        self.oob.append(raw)
        return False


def _pickle_payload(obj: Any, threshold: int) -> 'bytes | SerializedObject':
    """Pickle ``obj``, keeping large buffers out-of-band (wire id 0x06).

    Small results (no out-of-band buffers, payload below ``threshold``)
    produce a compact 0x05 frame; in-band results at or above the threshold
    keep the classic two-segment 0x05 layout.
    """
    sieve = _BufferSieve(threshold if threshold > 0 else 1)
    try:
        payload = _pickle_dumps(
            obj, protocol=_PICKLE_PROTOCOL, buffer_callback=sieve,
        )
    except _NonContiguousBuffer:
        payload = _pickle_dumps(obj, protocol=_PICKLE_PROTOCOL)
        sieve.oob = []
    oob = sieve.oob
    if not oob:
        if len(payload) < threshold:
            return _IDENT_PICKLE + payload
        return SerializedObject([_IDENT_PICKLE, payload])
    header = b''.join(
        [
            _IDENT_PICKLE5,
            _U32.pack(len(oob)),
            _U64.pack(len(payload)),
            *(_U64.pack(r.nbytes) for r in oob),
        ],
    )
    return SerializedObject([header, payload, *oob])


def _numpy_payload(arr: np.ndarray, threshold: int) -> 'bytes | SerializedObject':
    """Serialize an ndarray as ``.npy`` header + its data buffer.

    Arrays with fewer than ``threshold`` data bytes are joined into one
    compact frame (the copy is cheaper than segment bookkeeping at that
    scale); larger arrays keep a zero-copy view of their buffer.
    """
    if arr.dtype.hasobject:
        raise SerializationError(
            'object-dtype NumPy arrays cannot use the array fast path '
            '(allow_pickle is disabled); wrap the data in a picklable '
            'container instead',
        )
    if not (arr.flags.c_contiguous or arr.flags.f_contiguous):
        arr = np.ascontiguousarray(arr)
    try:
        header_io = io.BytesIO()
        np.lib.format.write_array_header_1_0(
            header_io, np.lib.format.header_data_from_array_1_0(arr),
        )
        # 'A' keeps whichever memory order the array already has, so the
        # flat view aliases the array's buffer instead of copying it.
        flat = arr.reshape(-1, order='A')
        raw = memoryview(flat).cast('B')
    except (ValueError, BufferError, TypeError):
        # Dtypes outside the buffer protocol (datetime64, timedelta64, ...):
        # fall back to NumPy's own writer — one copy, same wire bytes.
        buffer = io.BytesIO()
        np.save(buffer, arr, allow_pickle=False)
        payload = buffer.getvalue()
        if len(payload) < threshold:
            return _IDENT_NUMPY + payload
        return SerializedObject([_IDENT_NUMPY, payload])
    if arr.nbytes < threshold:
        return b''.join((_IDENT_NUMPY, header_io.getvalue(), raw))
    return SerializedObject([_IDENT_NUMPY, header_io.getvalue(), raw])


def _custom_payload(obj: Any, threshold: int) -> 'bytes | SerializedObject':
    """Serialize ``obj`` through its registered custom serializer (0x04)."""
    custom = default_registry.find(obj)
    if custom is None:
        # The registration disappeared between classification and use (the
        # version guard makes this a one-call race at most): re-classify.
        _routes.pop(type(obj), None)
        return serialize(obj)
    name, serializer, _ = custom
    try:
        payload = serializer(obj)
    except Exception as e:  # noqa: BLE001
        raise SerializationError(
            f'Registered serializer {name!r} failed for '
            f'{type(obj).__name__}: {e}',
        ) from e
    if not isinstance(payload, (bytes, bytearray, memoryview)):
        raise SerializationError(
            f'Registered serializer {name!r} must return bytes, got '
            f'{type(payload).__name__}',
        )
    head = _IDENT_CUSTOM + name.encode('utf-8') + b'\n'
    if len(payload) < threshold:
        return head + bytes(payload)
    return SerializedObject([head, payload])


def serialize(obj: Any) -> 'bytes | SerializedObject':
    """Serialize ``obj`` using the default scheme.

    Sub-threshold payloads (see :func:`small_frame_threshold`) return a
    compact contiguous ``bytes`` frame; everything else returns a
    :class:`SerializedObject` whose segments alias ``obj``'s memory where
    possible.  ``bytes(result)`` yields the contiguous wire bytes for
    non-buffer-aware consumers in either case.

    Raises:
        SerializationError: if the object cannot be serialized (e.g. pickling
            fails for an unpicklable object).
    """
    global _routes_version
    registry_version = default_registry.version
    if registry_version != _routes_version:
        _routes.clear()
        _routes_version = registry_version
    tp = type(obj)
    route = _routes.get(tp)
    if route is None:
        route = _classify(obj)
        _routes[tp] = route
    threshold = _small_threshold

    if route == _R_PICKLE:
        # Optimistic: no buffer_callback, matching the minimal legacy work.
        try:
            payload = _pickle_dumps(obj, protocol=_PICKLE_PROTOCOL)
        except Exception as e:  # noqa: BLE001
            raise SerializationError(
                f'Object of type {tp.__name__} could not be pickled: {e}',
            ) from e
        if len(payload) < threshold:
            return _IDENT_PICKLE + payload
        # Overflow: this type carries real data — permanently upgrade it to
        # the sieved route so large buffers travel out-of-band (zero-copy)
        # from now on, and re-pickle this instance that way too.
        _routes[tp] = _R_PICKLE_SIEVED
        route = _R_PICKLE_SIEVED
    if route == _R_PICKLE_SIEVED:
        try:
            return _pickle_payload(obj, threshold)
        except SerializationError:
            raise
        except Exception as e:  # noqa: BLE001
            raise SerializationError(
                f'Object of type {tp.__name__} could not be pickled: {e}',
            ) from e
    if route == _R_BYTES:
        if len(obj) < threshold:
            return _IDENT_BYTES + obj
        return SerializedObject([_IDENT_BYTES, obj])
    if route == _R_STR:
        encoded = obj.encode('utf-8')
        if len(encoded) < threshold:
            return _IDENT_STR + encoded
        return SerializedObject([_IDENT_STR, encoded])
    if route == _R_NDARRAY:
        return _numpy_payload(obj, threshold)
    if route == _R_BYTEVIEW:
        # Zero-copy on the large path: the segment aliases the caller's
        # buffer until the connector writes (or freezes) it.  Views that
        # cannot be cast to a flat byte view (anything not C-contiguous)
        # are materialized here.
        if isinstance(obj, memoryview) and not obj.c_contiguous:
            obj = bytes(obj)
            if len(obj) < threshold:
                return _IDENT_BYTES + obj
            return SerializedObject([_IDENT_BYTES, obj])
        if len(obj) < threshold:
            return _IDENT_BYTES + bytes(obj)
        return SerializedObject([_IDENT_BYTES, obj])
    if route == _R_PROXY:
        payload = _pickle_dumps(obj, protocol=_PICKLE_PROTOCOL)
        if len(payload) < threshold:
            return _IDENT_PICKLE + payload
        return SerializedObject([_IDENT_PICKLE, payload])
    return _custom_payload(obj, threshold)


# --------------------------------------------------------------------------- #
# Deserialization
# --------------------------------------------------------------------------- #
def _parse_npy_header(
    view: memoryview,
) -> 'tuple[np.dtype, tuple, str, int] | None':
    """Parse a ``.npy`` magic + format header held at the start of ``view``.

    Returns ``(dtype, shape, order, data_start)`` or ``None`` when the
    container is not a known ``.npy`` version (callers fall back to NumPy's
    own reader).

    Raises:
        SerializationError: for object-dtype arrays (pickled payloads are
            never loaded from the array fast path).
    """
    if bytes(view[:6]) != b'\x93NUMPY':
        return None
    major = view[6]
    if major == 1:
        (hlen,) = struct.unpack('<H', view[8:10])
        data_start = 10 + hlen
        header_bytes = bytes(view[10:data_start])
    elif major in (2, 3):
        (hlen,) = struct.unpack('<I', view[8:12])
        data_start = 12 + hlen
        header_bytes = bytes(view[12:data_start])
    else:
        return None
    header = ast.literal_eval(header_bytes.decode('latin1'))
    try:
        dtype = np.lib.format.descr_to_dtype(header['descr'])
    except AttributeError:  # pragma: no cover - very old numpy
        dtype = np.dtype(header['descr'])
    if dtype.hasobject:
        raise SerializationError(
            'refusing to load an object-dtype array (allow_pickle disabled)',
        )
    order = 'F' if header.get('fortran_order') else 'C'
    return dtype, tuple(header['shape']), order, data_start


def _npy_from_buffer(
    raw: memoryview,
    dtype: np.dtype,
    shape: tuple,
    order: str,
) -> np.ndarray:
    """Zero-copy array over ``raw``; always read-only.

    The array aliases storage it does not own (received buffers, mmapped
    files, an in-process producer's memory), so it is uniformly marked
    read-only regardless of connector — mutating a fetched array would
    otherwise silently corrupt shared or producer state on some channels
    and not others.  Consumers that need to mutate call ``np.copy``.
    """
    count = 1
    for dim in shape:
        count *= dim
    arr = np.frombuffer(raw, dtype=dtype, count=count)
    arr.flags.writeable = False
    return arr.reshape(shape, order=order)


def _read_npy(view: memoryview) -> np.ndarray:
    """Parse a ``.npy`` payload from ``view`` without copying the array data."""
    parsed = _parse_npy_header(view)
    if parsed is None:
        # Unknown container: fall back to NumPy's own reader (one copy).
        return np.load(io.BytesIO(bytes(view)), allow_pickle=False)
    dtype, shape, order, data_start = parsed
    return _npy_from_buffer(view[data_start:], dtype, shape, order)


def _read_pickle5(payload: memoryview) -> Any:
    """Decode the 0x06 layout: sliced views feed ``pickle.loads`` buffers."""
    (nbuffers,) = _U32.unpack(payload[:4])
    (pickle_len,) = _U64.unpack(payload[4:12])
    lens_end = 12 + 8 * nbuffers
    lengths = [
        _U64.unpack(payload[12 + 8 * i:20 + 8 * i])[0] for i in range(nbuffers)
    ]
    offset = lens_end + pickle_len
    pickled = payload[lens_end:offset]
    buffers: list[memoryview] = []
    for length in lengths:
        # toreadonly: reconstructed arrays alias storage they do not own,
        # so they surface uniformly read-only (same rule as _npy_from_buffer).
        buffers.append(payload[offset:offset + length].toreadonly())
        offset += length
    return pickle.loads(pickled, buffers=buffers)


def _find_newline(view: memoryview) -> int:
    """Index of the first ``\\n`` in ``view`` (searched in small chunks)."""
    chunk_size = 4096
    for start in range(0, len(view), chunk_size):
        idx = bytes(view[start:start + chunk_size]).find(b'\n')
        if idx >= 0:
            return start + idx
    return -1


def _deserialize_view(view: memoryview) -> Any:
    """Deserialize a contiguous wire payload held in a flat byte view."""
    identifier = view[0]
    payload = view[1:]
    if identifier == _IDENT_BYTES[0]:
        return bytes(payload)
    if identifier == _IDENT_STR[0]:
        return str(payload, 'utf-8')
    if identifier == _IDENT_NUMPY[0]:
        return _read_npy(payload)
    if identifier == _IDENT_CUSTOM[0]:
        sep = _find_newline(payload)
        if sep < 0:
            raise SerializationError(
                'custom-serializer payload is missing its name delimiter',
            )
        name = bytes(payload[:sep]).decode('utf-8')
        entry = default_registry.get(name)
        if entry is None:
            raise SerializationError(
                f'No serializer registered under name {name!r}; it must be '
                'registered in the consuming process as well',
            )
        _, _, deserializer = entry
        try:
            # Registered deserializers are documented to take bytes.
            return deserializer(bytes(payload[sep + 1:]))
        except Exception as e:  # noqa: BLE001
            raise SerializationError(
                f'Registered deserializer {name!r} failed: {e}',
            ) from e
    if identifier == _IDENT_PICKLE[0]:
        try:
            return pickle.loads(payload)
        except Exception as e:  # noqa: BLE001
            raise SerializationError(f'Unpickling failed: {e}') from e
    if identifier == _IDENT_PICKLE5[0]:
        try:
            return _read_pickle5(payload)
        except Exception as e:  # noqa: BLE001
            raise SerializationError(f'Unpickling failed: {e}') from e
    raise SerializationError(
        f'Unknown serialization identifier byte: {bytes([identifier])!r}',
    )


def _deserialize_structured(data: SerializedObject) -> Any:
    """Fast paths over an intact segment structure (no join, no copies).

    Fires when ``data`` still has the exact segment shape :func:`serialize`
    produced — the in-process round trip and buffer-aware connectors that
    store segments as-is.  Any other shape falls back to the contiguous
    reader over the joined bytes.
    """
    pieces = data.pieces
    if not pieces:
        raise SerializationError('cannot deserialize an empty byte string')
    head = pieces[0]
    if not isinstance(head, (bytes, bytearray)):
        head = memoryview(head)
    if len(pieces) == 2 and len(head) == 1:
        if head[0] == _IDENT_BYTES[0]:
            payload = pieces[1]
            return payload if isinstance(payload, bytes) else bytes(payload)
        if head[0] == _IDENT_STR[0]:
            return str(pieces[1], 'utf-8')
        if head[0] == _IDENT_PICKLE[0]:
            try:
                return pickle.loads(pieces[1])
            except Exception as e:  # noqa: BLE001
                raise SerializationError(f'Unpickling failed: {e}') from e
    if len(pieces) == 3 and len(head) == 1 and head[0] == _IDENT_NUMPY[0]:
        header = pieces[1]
        raw = pieces[2]
        combined = memoryview(bytes(header))  # header is small
        arr_view = raw if isinstance(raw, memoryview) else memoryview(raw)
        return _read_npy_split(combined, arr_view.cast('B'))
    if len(head) >= 1 and head[0] == _IDENT_PICKLE5[0] and len(pieces) >= 3:
        # head = ident + counts/lengths; pieces[1] = pickle; rest = buffers.
        try:
            pickled = pieces[1]
            buffers = [
                (p if isinstance(p, memoryview) else memoryview(p)).toreadonly()
                for p in pieces[2:]
            ]
            return pickle.loads(pickled, buffers=buffers)
        except Exception as e:  # noqa: BLE001
            raise SerializationError(f'Unpickling failed: {e}') from e
    joined = bytes(data)
    if not joined:
        raise SerializationError('cannot deserialize an empty byte string')
    return _deserialize_view(_flat_view(joined))


def _read_npy_split(header_view: memoryview, raw: memoryview) -> np.ndarray:
    """Like :func:`_read_npy` but with the header and data in two buffers."""
    parsed = _parse_npy_header(header_view)
    if parsed is None:
        raise SerializationError('corrupt npy header segment')
    dtype, shape, order, _data_start = parsed
    return _npy_from_buffer(raw, dtype, shape, order)


def _flat_view(data: Any) -> memoryview:
    view = data if isinstance(data, memoryview) else memoryview(data)
    if view.format != 'B' or view.ndim != 1:
        view = view.cast('B')
    return view


def deserialize(data: 'BytesLike | SerializedObject') -> Any:
    """Inverse of :func:`serialize`.

    Accepts ``bytes``, ``bytearray``, ``memoryview`` (or any contiguous
    buffer such as an ``mmap``) and :class:`SerializedObject` without
    materializing large input; big payloads are parsed as views while
    sub-threshold ``bytes`` frames take a slice-based fast path.

    Raises:
        SerializationError: if ``data`` is not a payload produced by
            :func:`serialize` or the payload cannot be decoded.
    """
    if type(data) is bytes:
        n = len(data)
        if n == 0:
            raise SerializationError('cannot deserialize an empty byte string')
        if n <= _small_threshold + 1:
            # Small frames: plain slices beat memoryview indirection here.
            ident = data[0]
            if ident == 1:
                return data[1:]
            if ident == 2:
                return data[1:].decode('utf-8')
            if ident == 5:
                try:
                    return _pickle_loads(data[1:])
                except Exception as e:  # noqa: BLE001
                    raise SerializationError(f'Unpickling failed: {e}') from e
        return _deserialize_view(_flat_view(data))
    if isinstance(data, SerializedObject):
        return _deserialize_structured(data)
    try:
        view = _flat_view(data)
    except TypeError:
        raise SerializationError(
            f'deserialize expects bytes, got {type(data).__name__}',
        ) from None
    if len(view) == 0:
        raise SerializationError('cannot deserialize an empty byte string')
    return _deserialize_view(view)
