"""Buffer-aware payload container used by the zero-copy data path.

:func:`repro.serialize.serialize` produces a :class:`SerializedObject`: a
small header plus a list of byte segments that *alias* the source object's
memory wherever possible (the raw ``bytes`` payload, a NumPy array's data
buffer, pickle-5 out-of-band buffers).  Buffer-aware connectors
(``Connector.supports_buffers``) write the segments directly — scatter/gather
socket sends, ``writev`` file writes, or storing the segments as-is for
in-process channels — so a ``put`` never concatenates the payload into one
large intermediate byte string.

Legacy code paths keep working: a ``SerializedObject`` joins itself into a
single contiguous byte string on demand (``bytes(obj)``), supports ``len``,
slicing and ``startswith``, and pickles as its joined bytes.  The joined form
is byte-for-byte identical to the pre-buffer wire format, so data written by
either representation deserializes with either reader.

Because segments alias producer memory, a connector that *retains* payloads
in process memory (rather than writing them out) must call :meth:`frozen`
first: mutable segments (``bytearray``, array buffers) are snapshotted while
immutable ``bytes`` segments are kept by reference.
"""
from __future__ import annotations

import os
from typing import Any
from typing import Callable
from typing import Iterable
from typing import Sequence
from typing import Union

BytesLike = Union[bytes, bytearray, memoryview]
"""Contiguous read-only-compatible byte containers accepted on the wire."""

__all__ = [
    'BytesLike',
    'SerializedObject',
    'freeze_payload',
    'payload_nbytes',
    'segments_of',
    'to_bytes',
    'vectored_write',
    'write_payload_to_path',
    'write_segments',
]


def _as_byte_view(piece: Any) -> memoryview:
    """Return a flat ``uint8`` memoryview of ``piece`` (no copy)."""
    view = piece if isinstance(piece, memoryview) else memoryview(piece)
    if view.format != 'B' or view.ndim != 1:
        view = view.cast('B')
    return view


class SerializedObject:
    """A serialized payload as a header plus zero-copy buffer segments.

    Args:
        pieces: byte-like segments in wire order.  ``bytes`` pieces are kept
            by reference; ``bytearray``/``memoryview`` pieces are wrapped
            without copying (they alias the caller's memory).
    """

    __slots__ = ('_pieces', '_nbytes', '_joined')

    def __init__(self, pieces: Sequence[Any]) -> None:
        self._pieces: tuple[Any, ...] = tuple(pieces)
        self._nbytes: int | None = None
        self._joined: bytes | None = None

    # -- buffer access ---------------------------------------------------- #
    @property
    def pieces(self) -> tuple[Any, ...]:
        """The raw segments as provided (``bytes`` stay ``bytes``)."""
        return self._pieces

    def segments(self) -> list[memoryview]:
        """Flat ``uint8`` memoryviews over every non-empty segment."""
        return [
            view
            for piece in self._pieces
            if len(view := _as_byte_view(piece)) > 0
        ]

    @property
    def nbytes(self) -> int:
        """Total payload size in bytes across all segments."""
        if self._nbytes is None:
            total = 0
            for piece in self._pieces:
                if isinstance(piece, memoryview):
                    total += piece.nbytes
                else:
                    total += len(piece)
            self._nbytes = total
        return self._nbytes

    def __len__(self) -> int:
        return self.nbytes

    # -- materialization (legacy / single-buffer interop) ------------------ #
    def __bytes__(self) -> bytes:
        if self._joined is None:
            if len(self._pieces) == 1 and isinstance(self._pieces[0], bytes):
                self._joined = self._pieces[0]
            else:
                self._joined = b''.join(_as_byte_view(p) for p in self._pieces)
        return self._joined

    def __getitem__(self, item: int | slice) -> int | bytes:
        return bytes(self)[item]

    def startswith(self, prefix: bytes) -> bool:
        """Whether the joined wire bytes start with ``prefix``."""
        return bytes(self)[: len(prefix)] == prefix

    def __eq__(self, other: object) -> bool:
        if isinstance(other, SerializedObject):
            return bytes(self) == bytes(other)
        if isinstance(other, (bytes, bytearray, memoryview)):
            return bytes(self) == bytes(other)
        return NotImplemented

    def __hash__(self) -> int:
        return hash(bytes(self))

    def __repr__(self) -> str:
        return (
            f'SerializedObject(segments={len(self._pieces)}, '
            f'nbytes={self.nbytes})'
        )

    def __reduce__(self):
        # Pickling materializes: out-of-band segments only help while the
        # payload stays inside this process's zero-copy pipeline.
        return (type(self), ((bytes(self),),))

    def frozen(self) -> 'SerializedObject':
        """Return an equivalent object whose segments own immutable memory.

        ``bytes`` segments are kept by reference (no copy); everything else
        (``bytearray``, array-backed memoryviews, ...) aliases memory the
        producer may mutate after the put, so those are snapshotted.  Used by
        connectors that retain payloads in process memory.
        """
        if all(isinstance(p, bytes) for p in self._pieces):
            return self
        return SerializedObject(
            [p if isinstance(p, bytes) else bytes(p) for p in self._pieces],
        )


# --------------------------------------------------------------------------- #
# Payload helpers shared by Store, connectors and the KV wire protocol
# --------------------------------------------------------------------------- #
def payload_nbytes(data: Any) -> int:
    """Total byte size of a ``BytesLike | SerializedObject`` payload."""
    if isinstance(data, SerializedObject):
        return data.nbytes
    if isinstance(data, memoryview):
        return data.nbytes
    return len(data)


def to_bytes(data: Any) -> bytes:
    """Join ``data`` into one contiguous ``bytes`` (no copy if already bytes)."""
    if isinstance(data, bytes):
        return data
    return bytes(data)


def segments_of(data: Any) -> list[memoryview]:
    """Flat byte segments of a payload, for scatter/gather I/O."""
    if isinstance(data, SerializedObject):
        return data.segments()
    view = _as_byte_view(data)
    return [view] if len(view) else []


def freeze_payload(data: Any) -> 'bytes | SerializedObject':
    """Snapshot a payload for in-process retention.

    Connectors that *keep* the payload in this process's memory (local, DIM
    memory nodes, endpoint storage) must not alias memory the producer can
    mutate after the put.  Immutable ``bytes`` (and ``SerializedObject``
    instances made only of ``bytes`` segments) pass through untouched —
    zero copies; mutable buffers are copied exactly once.
    """
    if isinstance(data, bytes):
        return data
    if isinstance(data, SerializedObject):
        return data.frozen()
    return bytes(data)


try:
    IOV_MAX = os.sysconf('SC_IOV_MAX')
    if IOV_MAX <= 0:  # pragma: no cover - unlimited reported as -1
        IOV_MAX = 1024
except (AttributeError, OSError, ValueError):  # pragma: no cover - non-POSIX
    IOV_MAX = 1024
"""Maximum iovec entries per vectored syscall (``writev``/``sendmsg``)."""


def vectored_write(
    write: 'Callable[[list[memoryview]], int]',
    segments: Iterable[memoryview],
) -> int:
    """Drive a vectored-write syscall until every segment is written.

    ``write`` is the syscall wrapper (``os.writev`` on a fd, ``sendmsg`` on
    a socket); it receives at most ``IOV_MAX`` iovec entries per call and
    returns the number of bytes written.  Partial writes advance across
    segment boundaries, so one multi-segment payload lands contiguously
    without ever being joined in userspace.  Returns total bytes written.
    """
    pending = [s for s in segments if len(s)]
    total = 0
    while pending:
        written = write(pending[:IOV_MAX])
        total += written
        while written:
            head = pending[0]
            if written >= len(head):
                written -= len(head)
                pending.pop(0)
            else:
                pending[0] = head[written:]
                written = 0
    return total


def write_segments(fd: int, segments: Iterable[memoryview]) -> int:
    """``writev``-style write of every segment to ``fd``; returns bytes written."""
    return vectored_write(lambda bufs: os.writev(fd, bufs), segments)


def write_payload_to_path(path: str, data: Any) -> int:
    """Scatter-write a ``BytesLike | SerializedObject`` payload to ``path``.

    Creates (or truncates) the file and lands the payload's segments with
    :func:`write_segments`; returns the number of bytes written.
    """
    fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
    try:
        return write_segments(fd, segments_of(data))
    finally:
        os.close(fd)
