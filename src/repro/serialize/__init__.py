"""Object (de)serialization used by stores before talking to connectors."""
from repro.serialize.serializer import BytesLike
from repro.serialize.serializer import deserialize
from repro.serialize.serializer import serialize
from repro.serialize.registry import SerializerRegistry
from repro.serialize.registry import default_registry
from repro.serialize.registry import register_serializer
from repro.serialize.registry import unregister_serializer

__all__ = [
    'BytesLike',
    'SerializerRegistry',
    'default_registry',
    'deserialize',
    'register_serializer',
    'serialize',
    'unregister_serializer',
]
