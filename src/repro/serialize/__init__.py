"""Object (de)serialization used by stores before talking to connectors."""
from repro.serialize.buffers import BytesLike
from repro.serialize.buffers import SerializedObject
from repro.serialize.buffers import freeze_payload
from repro.serialize.buffers import payload_nbytes
from repro.serialize.buffers import segments_of
from repro.serialize.buffers import to_bytes
from repro.serialize.buffers import write_segments
from repro.serialize.serializer import deserialize
from repro.serialize.serializer import serialize
from repro.serialize.serializer import set_small_frame_threshold
from repro.serialize.serializer import small_frame_threshold
from repro.serialize.registry import SerializerRegistry
from repro.serialize.registry import default_registry
from repro.serialize.registry import register_serializer
from repro.serialize.registry import unregister_serializer

__all__ = [
    'BytesLike',
    'SerializedObject',
    'SerializerRegistry',
    'default_registry',
    'deserialize',
    'freeze_payload',
    'payload_nbytes',
    'register_serializer',
    'segments_of',
    'serialize',
    'set_small_frame_threshold',
    'small_frame_threshold',
    'to_bytes',
    'unregister_serializer',
    'write_segments',
]
