"""Shared retry policy: jittered exponential backoff.

Every reconnect/retry path in the code base — the SimKV client's
stale-connection loop, streaming subscription reconnects, broker
failover, and the workflow engine's transient-fault resubmission —
derives its delays from one :class:`RetryPolicy` so backoff behaviour
(growth rate, cap, jitter) is tuned in exactly one place.

The jitter is *full-spread around the nominal delay*: attempt ``n``
sleeps ``base * multiplier**n`` (capped at ``max_delay``), scaled by a
uniform factor in ``[1 - jitter, 1 + jitter]``.  Jitter decorrelates
retry storms when many clients lose the same broker at once; a seeded
:class:`random.Random` makes the schedule reproducible in tests.
"""
from __future__ import annotations

import random
import time
from collections.abc import Callable
from collections.abc import Iterator
from dataclasses import dataclass
from typing import Any
from typing import TypeVar

T = TypeVar('T')

#: Process-wide rng used when a policy call does not supply one.
_GLOBAL_RNG = random.Random()


@dataclass(frozen=True)
class RetryPolicy:
    """An immutable jittered-exponential-backoff schedule.

    ``max_attempts`` bounds the *total* number of tries (so a policy with
    ``max_attempts=1`` never retries).  ``delay(n)`` is the sleep taken
    *after* failed attempt ``n`` (0-based); with ``base_delay=0`` the
    policy retries immediately, which is what pipelined clients cycling
    to a fresh pooled connection want.
    """

    max_attempts: int = 5
    base_delay: float = 0.05
    max_delay: float = 1.0
    multiplier: float = 2.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        """Validate the schedule parameters."""
        if self.max_attempts < 1:
            raise ValueError('max_attempts must be >= 1')
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError('delays must be >= 0')
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError('jitter must be in [0, 1]')

    def delay(self, attempt: int, rng: random.Random | None = None) -> float:
        """Return the backoff delay (seconds) after failed attempt ``attempt``."""
        nominal = min(self.base_delay * (self.multiplier ** attempt), self.max_delay)
        if nominal <= 0.0 or self.jitter == 0.0:
            return nominal
        rng = rng if rng is not None else _GLOBAL_RNG
        spread = 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return nominal * spread

    def backoffs(self, rng: random.Random | None = None) -> Iterator[float]:
        """Yield the ``max_attempts - 1`` delays between consecutive attempts."""
        for attempt in range(self.max_attempts - 1):
            yield self.delay(attempt, rng)

    def attempts(self, rng: random.Random | None = None) -> Iterator[int]:
        """Yield attempt indices ``0..max_attempts-1``, sleeping in between.

        The canonical retry loop::

            for attempt in policy.attempts():
                try:
                    return do_thing()
                except TransientError:
                    continue
            raise

        The backoff sleep happens lazily *before* yielding each retry, so
        a loop that succeeds (breaks/returns) on attempt ``n`` never pays
        the delay for attempt ``n + 1``.
        """
        for attempt in range(self.max_attempts):
            if attempt:
                pause = self.delay(attempt - 1, rng)
                if pause > 0.0:
                    time.sleep(pause)
            yield attempt

    def call(
        self,
        fn: Callable[[], T],
        *,
        retry_on: tuple[type[BaseException], ...] = (Exception,),
        rng: random.Random | None = None,
        on_retry: Callable[[int, BaseException], Any] | None = None,
    ) -> T:
        """Call ``fn`` under this policy, retrying on ``retry_on`` failures.

        ``on_retry(attempt, error)`` is invoked before each backoff sleep;
        the final failure is re-raised unmodified.
        """
        for attempt in range(self.max_attempts):
            try:
                return fn()
            except retry_on as error:
                if attempt + 1 >= self.max_attempts:
                    raise
                if on_retry is not None:
                    on_retry(attempt, error)
                pause = self.delay(attempt, rng)
                if pause > 0.0:
                    time.sleep(pause)
        raise AssertionError('unreachable')  # pragma: no cover


#: Default policy for broker reconnect/failover paths: ~6 attempts spanning
#: roughly 1.5 s of nominal backoff — long enough to ride out a broker
#: restart, short enough that failover to a replica is quick.
DEFAULT_RECONNECT_POLICY = RetryPolicy(
    max_attempts=6, base_delay=0.05, max_delay=0.5, jitter=0.5,
)

#: Default policy for pipelined request clients: retry immediately on a
#: stale pooled connection (no sleep), bounded by the pool size at the
#: call site.
IMMEDIATE_POLICY = RetryPolicy(max_attempts=2, base_delay=0.0, jitter=0.0)
