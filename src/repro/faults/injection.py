"""Transport-seam fault injection for the SimKV wire protocol.

A process-global :class:`FaultInjector` (installed with
:func:`install_injector`) is consulted by the SimKV client at its two
transport seams — **connect** and **send** — and can:

* refuse connections (``add_refuse``) — simulates a dead/restarting broker,
* reset established connections (``add_reset``) — simulates an RST mid-flight,
* add latency (``add_latency``) — simulates a congested or distant link,
* truncate payloads (``add_truncate``) — simulates a peer crashing mid-write
  (the frame is cut short and the connection killed, exactly what a SIGKILL
  between ``sendmsg`` calls produces).

Faults are keyed by a *target* string, normally ``"host:port"``; the
wildcard target ``'*'`` matches every connection.  When no injector is
installed the seams are a single module-attribute read — effectively free.

The injector is deliberately one-per-process: it models the *network* as
seen by this process, not a per-client property, and keeps the seams
zero-configuration for tests and benchmarks.
"""
from __future__ import annotations

import threading
import time

__all__ = [
    'FaultInjector',
    'current_injector',
    'install_injector',
    'uninstall_injector',
]


class _Rule:
    """Mutable per-target fault state."""

    __slots__ = ('latency', 'latency_until', 'resets', 'truncates', 'refusals')

    def __init__(self) -> None:
        self.latency = 0.0
        self.latency_until: float | None = None
        self.resets = 0
        self.truncates = 0
        self.refusals = 0


class FaultInjector:
    """A schedulable set of transport faults, keyed by ``host:port`` target.

    Count-based faults (``reset``/``truncate``/``refuse``) decrement as
    they fire; latency persists until ``duration`` elapses or the rule is
    cleared.  Every fired fault is recorded in :attr:`triggered` so tests
    can assert the plan actually executed.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._rules: dict[str, _Rule] = {}
        #: ``(target, kind)`` tuples for every fault that actually fired.
        self.triggered: list[tuple[str, str]] = []

    # -- configuration ------------------------------------------------------ #
    def _rule(self, target: str) -> _Rule:
        rule = self._rules.get(target)
        if rule is None:
            rule = self._rules[target] = _Rule()
        return rule

    def add_latency(self, target: str, delay: float, *, duration: float | None = None) -> None:
        """Delay every connect/send to ``target`` by ``delay`` seconds.

        ``duration`` bounds how long (seconds from now) the latency stays
        in effect; ``None`` keeps it until :meth:`clear`.
        """
        with self._lock:
            rule = self._rule(target)
            rule.latency = float(delay)
            rule.latency_until = (
                None if duration is None else time.monotonic() + duration
            )

    def add_reset(self, target: str, count: int = 1) -> None:
        """Reset the next ``count`` sends to ``target`` (connection RST)."""
        with self._lock:
            self._rule(target).resets += int(count)

    def add_truncate(self, target: str, count: int = 1) -> None:
        """Truncate the next ``count`` request frames to ``target`` mid-write."""
        with self._lock:
            self._rule(target).truncates += int(count)

    def add_refuse(self, target: str, count: int = 1) -> None:
        """Refuse the next ``count`` connection attempts to ``target``."""
        with self._lock:
            self._rule(target).refusals += int(count)

    def clear(self, target: str | None = None) -> None:
        """Drop all faults for ``target`` (or every target when ``None``)."""
        with self._lock:
            if target is None:
                self._rules.clear()
            else:
                self._rules.pop(target, None)

    # -- seam hooks --------------------------------------------------------- #
    def _matching(self, target: str) -> list[_Rule]:
        rules = []
        for key in (target, '*'):
            rule = self._rules.get(key)
            if rule is not None:
                rules.append(rule)
        return rules

    def _latency_of(self, rules: list[_Rule]) -> float:
        now = time.monotonic()
        delay = 0.0
        for rule in rules:
            if rule.latency <= 0.0:
                continue
            if rule.latency_until is not None and now >= rule.latency_until:
                rule.latency = 0.0
                rule.latency_until = None
                continue
            delay = max(delay, rule.latency)
        return delay

    def on_connect(self, target: str) -> None:
        """Seam hook: called before a socket connect to ``target``.

        May sleep (latency) or raise :class:`ConnectionRefusedError`.
        """
        with self._lock:
            rules = self._matching(target)
            delay = self._latency_of(rules)
            refuse = False
            for rule in rules:
                if rule.refusals > 0:
                    rule.refusals -= 1
                    refuse = True
                    break
            if refuse:
                self.triggered.append((target, 'refuse'))
            elif delay > 0.0:
                self.triggered.append((target, 'latency'))
        if delay > 0.0:
            time.sleep(delay)
        if refuse:
            raise ConnectionRefusedError(f'injected connection refusal to {target}')

    def on_send(self, target: str) -> str | None:
        """Seam hook: called before a request frame is written to ``target``.

        Returns ``'reset'`` (caller must fail the connection), ``'truncate'``
        (caller must cut the frame short and fail the connection), or
        ``None``.  May sleep for injected latency first.
        """
        with self._lock:
            rules = self._matching(target)
            delay = self._latency_of(rules)
            action: str | None = None
            for rule in rules:
                if rule.resets > 0:
                    rule.resets -= 1
                    action = 'reset'
                    break
                if rule.truncates > 0:
                    rule.truncates -= 1
                    action = 'truncate'
                    break
            if action is not None:
                self.triggered.append((target, action))
            elif delay > 0.0:
                self.triggered.append((target, 'latency'))
        if delay > 0.0:
            time.sleep(delay)
        return action


#: The process-global injector; ``None`` means all seams are no-ops.
_INJECTOR: FaultInjector | None = None


def install_injector(injector: FaultInjector | None = None) -> FaultInjector:
    """Install (and return) the process-global fault injector."""
    global _INJECTOR
    _INJECTOR = injector if injector is not None else FaultInjector()
    return _INJECTOR


def uninstall_injector() -> None:
    """Remove the process-global injector (seams become no-ops again)."""
    global _INJECTOR
    _INJECTOR = None


def current_injector() -> FaultInjector | None:
    """Return the installed injector, or ``None``."""
    return _INJECTOR


def on_connect(host: str, port: int) -> None:
    """Module-level connect seam (cheap no-op when nothing is installed)."""
    injector = _INJECTOR
    if injector is not None:
        injector.on_connect(f'{host}:{port}')


def on_send(host: str, port: int) -> str | None:
    """Module-level send seam (cheap no-op when nothing is installed)."""
    injector = _INJECTOR
    if injector is None:
        return None
    return injector.on_send(f'{host}:{port}')
