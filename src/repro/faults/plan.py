"""Seeded, schedulable fault plans.

A :class:`FaultPlan` is a script of timed :class:`FaultAction` entries —
process SIGKILLs, connection resets/refusals, added latency, payload
truncation — executed by a background thread relative to
:meth:`FaultPlan.start`.  Action times can carry seeded jitter so chaos
runs are *randomised but reproducible*: the same seed always produces
the same schedule.

Process kills resolve their target through a ``pids`` mapping supplied
at start time (values may be ints or zero-argument callables, so a plan
can be built before its victims are spawned).  Network faults are
applied through a :class:`~repro.faults.injection.FaultInjector`
installed at the transport seams.

Used by the chaos tests and by ``benchmarks/bench_pipeline.py`` to kill
a broker and a consumer mid-run under a recorded, reproducible schedule.
"""
from __future__ import annotations

import os
import random
import signal
import threading
import time
from collections.abc import Callable
from collections.abc import Mapping
from dataclasses import dataclass

from repro.faults.injection import FaultInjector
from repro.faults.injection import current_injector
from repro.faults.injection import install_injector

__all__ = ['FaultAction', 'FaultPlan', 'FaultPlanRun']

#: Action kinds a plan may schedule.
KINDS = ('kill', 'reset', 'refuse', 'latency', 'truncate')


@dataclass(frozen=True)
class FaultAction:
    """One scheduled fault.

    ``at`` is seconds from plan start.  ``target`` names a process (for
    ``kill``, resolved via the ``pids`` mapping) or a ``host:port``
    transport address (for network faults; ``'*'`` matches every
    connection).  ``count`` applies to reset/refuse/truncate; ``delay``
    and ``duration`` to latency.
    """

    at: float
    kind: str
    target: str
    count: int = 1
    delay: float = 0.0
    duration: float | None = None

    def __post_init__(self) -> None:
        """Validate the action kind and schedule time."""
        if self.kind not in KINDS:
            raise ValueError(f'unknown fault kind {self.kind!r}')
        if self.at < 0:
            raise ValueError('action time must be >= 0')


class FaultPlan:
    """An ordered, optionally seed-jittered schedule of faults."""

    def __init__(self, *, seed: int | None = None) -> None:
        self.seed = seed
        self._rng = random.Random(seed)
        self.actions: list[FaultAction] = []

    def _jittered(self, at: float, jitter: float) -> float:
        if jitter <= 0.0:
            return at
        return max(0.0, at + self._rng.uniform(-jitter, jitter))

    def kill(self, target: str, at: float, *, jitter: float = 0.0) -> 'FaultPlan':
        """Schedule a SIGKILL of process ``target`` at ``at`` (± ``jitter``) s."""
        self.actions.append(FaultAction(self._jittered(at, jitter), 'kill', target))
        return self

    def reset(self, target: str, at: float, *, count: int = 1, jitter: float = 0.0) -> 'FaultPlan':
        """Schedule ``count`` connection resets against ``target``."""
        self.actions.append(
            FaultAction(self._jittered(at, jitter), 'reset', target, count=count),
        )
        return self

    def refuse(self, target: str, at: float, *, count: int = 1, jitter: float = 0.0) -> 'FaultPlan':
        """Schedule ``count`` connection refusals against ``target``."""
        self.actions.append(
            FaultAction(self._jittered(at, jitter), 'refuse', target, count=count),
        )
        return self

    def latency(
        self,
        target: str,
        at: float,
        *,
        delay: float,
        duration: float | None = None,
        jitter: float = 0.0,
    ) -> 'FaultPlan':
        """Schedule added per-operation latency against ``target``."""
        self.actions.append(
            FaultAction(
                self._jittered(at, jitter), 'latency', target,
                delay=delay, duration=duration,
            ),
        )
        return self

    def truncate(self, target: str, at: float, *, count: int = 1, jitter: float = 0.0) -> 'FaultPlan':
        """Schedule ``count`` mid-frame payload truncations against ``target``."""
        self.actions.append(
            FaultAction(self._jittered(at, jitter), 'truncate', target, count=count),
        )
        return self

    def start(
        self,
        *,
        pids: Mapping[str, 'int | Callable[[], int | None]'] | None = None,
        injector: FaultInjector | None = None,
    ) -> 'FaultPlanRun':
        """Begin executing the plan on a background thread.

        ``pids`` resolves ``kill`` targets; network faults go through
        ``injector`` (defaulting to the installed process-global one,
        installing a fresh one if none exists).
        """
        needs_network = any(a.kind != 'kill' for a in self.actions)
        if injector is None and needs_network:
            injector = current_injector() or install_injector()
        return FaultPlanRun(self.actions, pids=pids or {}, injector=injector)


@dataclass
class _Fired:
    """Record of one executed (or failed) action."""

    elapsed: float
    action: FaultAction
    error: str | None = None


class FaultPlanRun:
    """A running fault plan: a daemon thread firing actions on schedule."""

    def __init__(
        self,
        actions: list[FaultAction],
        *,
        pids: Mapping[str, 'int | Callable[[], int | None]'],
        injector: FaultInjector | None,
    ) -> None:
        self._actions = sorted(actions, key=lambda a: a.at)
        self._pids = pids
        self._injector = injector
        self._stop = threading.Event()
        self._started = time.monotonic()
        #: Execution log: one :class:`_Fired` per action that came due.
        self.executed: list[_Fired] = []
        self._thread = threading.Thread(
            target=self._run, name='fault-plan', daemon=True,
        )
        self._thread.start()

    # -- lifecycle ---------------------------------------------------------- #
    def stop(self) -> None:
        """Cancel any not-yet-fired actions and stop the thread."""
        self._stop.set()
        self._thread.join(timeout=5.0)

    def join(self, timeout: float | None = None) -> None:
        """Wait until every scheduled action has fired (or ``stop`` is called)."""
        self._thread.join(timeout=timeout)

    @property
    def done(self) -> bool:
        """Whether the schedule has finished executing."""
        return not self._thread.is_alive()

    def report(self) -> list[dict]:
        """JSON-friendly execution log (for benchmark reports)."""
        return [
            {
                'elapsed_s': round(f.elapsed, 3),
                'kind': f.action.kind,
                'target': f.action.target,
                'at_s': round(f.action.at, 3),
                'error': f.error,
            }
            for f in self.executed
        ]

    # -- execution ---------------------------------------------------------- #
    def _resolve_pid(self, target: str) -> int | None:
        entry = self._pids.get(target)
        if callable(entry):
            entry = entry()
        return int(entry) if entry is not None else None

    def _fire(self, action: FaultAction) -> str | None:
        if action.kind == 'kill':
            pid = self._resolve_pid(action.target)
            if pid is None:
                return f'no pid known for target {action.target!r}'
            try:
                os.kill(pid, getattr(signal, 'SIGKILL', signal.SIGTERM))
            except ProcessLookupError:
                return 'process already gone'
            return None
        if self._injector is None:
            return 'no injector installed for network fault'
        if action.kind == 'reset':
            self._injector.add_reset(action.target, action.count)
        elif action.kind == 'refuse':
            self._injector.add_refuse(action.target, action.count)
        elif action.kind == 'truncate':
            self._injector.add_truncate(action.target, action.count)
        elif action.kind == 'latency':
            self._injector.add_latency(
                action.target, action.delay, duration=action.duration,
            )
        return None

    def _run(self) -> None:
        for action in self._actions:
            while True:
                remaining = action.at - (time.monotonic() - self._started)
                if remaining <= 0:
                    break
                if self._stop.wait(min(remaining, 0.25)):
                    return
            if self._stop.is_set():
                return
            error: str | None
            try:
                error = self._fire(action)
            except Exception as e:  # noqa: BLE001 - never kill the plan thread
                error = repr(e)
            self.executed.append(
                _Fired(time.monotonic() - self._started, action, error),
            )
