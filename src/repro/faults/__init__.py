"""Fault tolerance and fault injection toolkit.

This package has two halves that mirror each other:

* :mod:`repro.faults.retry` — the *tolerance* half: a single, shared
  :class:`~repro.faults.retry.RetryPolicy` (jittered exponential backoff)
  used by every reconnect/retry path in the code base — the SimKV client,
  streaming subscriptions, broker failover, and the workflow engine — so
  backoff behaviour is tuned in exactly one place.
* :mod:`repro.faults.injection` / :mod:`repro.faults.plan` — the
  *injection* half: process-global fault hooks at the transport seams
  (connect/send) plus seeded, schedulable :class:`~repro.faults.plan.FaultPlan`
  scripts (SIGKILL, connection reset, added latency, payload truncation)
  that tests and benchmarks use to prove the tolerance half works.
"""
from repro.faults.injection import FaultInjector
from repro.faults.injection import current_injector
from repro.faults.injection import install_injector
from repro.faults.injection import uninstall_injector
from repro.faults.plan import FaultAction
from repro.faults.plan import FaultPlan
from repro.faults.plan import FaultPlanRun
from repro.faults.retry import DEFAULT_RECONNECT_POLICY
from repro.faults.retry import IMMEDIATE_POLICY
from repro.faults.retry import RetryPolicy

__all__ = [
    'DEFAULT_RECONNECT_POLICY',
    'FaultAction',
    'FaultInjector',
    'FaultPlan',
    'FaultPlanRun',
    'IMMEDIATE_POLICY',
    'RetryPolicy',
    'current_injector',
    'install_injector',
    'uninstall_injector',
]
