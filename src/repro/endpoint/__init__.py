"""ProxyStore endpoints (PS-endpoints) and their peer-to-peer fabric.

PS-endpoints are per-site object stores that forward requests for objects
held by other endpoints over peer connections established through a relay
(signaling) server — the mechanism that lets ProxyStore move data directly
between sites that are both behind NATs (Section 4.2.2, Figures 3 and 4 of
the paper).

This reproduction implements the full architecture — relay registration,
offer/answer + ICE-candidate exchange, hole-punching emulation, chunked data
channels, request forwarding, and reconnection — using in-process transports
(thread-safe queues) rather than WebSockets + WebRTC, which require public
connectivity that an offline single-machine environment cannot provide.  The
message flow, state machines and failure modes are preserved; the benchmark
harness charges wide-area costs for peer traffic on the virtual clock.
"""
from repro.endpoint.endpoint import Endpoint
from repro.endpoint.endpoint import EndpointKey
from repro.endpoint.relay import RelayServer
from repro.endpoint.storage import EndpointStorage

__all__ = ['Endpoint', 'EndpointKey', 'EndpointStorage', 'RelayServer']
