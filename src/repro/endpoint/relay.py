"""Relay (signaling) server used to establish endpoint peer connections.

The production ProxyStore relay is a small, publicly reachable WebSocket
service: endpoints register with it and it forwards session descriptions and
ICE candidates between peers so they can hole-punch a direct connection
(Figure 4 of the paper).  Its hosting requirements are minimal because it
only ever moves a few kilobytes per connection.

This in-process implementation keeps exactly that role: endpoints register a
handler under a UUID (assigned by the relay when not supplied, as in the
paper), and ``forward`` delivers signaling payloads to the destination's
handler.  Counters track how much signaling traffic the relay carried, which
the endpoint benchmarks report to show the relay is not on the data path.
"""
from __future__ import annotations

import threading
import uuid as uuid_module
from typing import Any
from typing import Callable

from repro.endpoint.messages import RelayForward
from repro.exceptions import RelayError

__all__ = ['RelayServer']

Handler = Callable[[RelayForward], None]


class RelayServer:
    """Routes signaling messages between registered endpoints."""

    def __init__(self, name: str = 'relay') -> None:
        self.name = name
        self._handlers: dict[str, Handler] = {}
        self._lock = threading.Lock()
        self.messages_forwarded = 0
        self.bytes_forwarded = 0

    # -- registration ------------------------------------------------------ #
    def register(self, handler: Handler, *, endpoint_uuid: str | None = None) -> str:
        """Register ``handler`` and return the endpoint's UUID.

        If ``endpoint_uuid`` is not provided the relay assigns one, matching
        the behaviour described in Section 4.2.2.
        """
        endpoint_uuid = endpoint_uuid or uuid_module.uuid4().hex
        with self._lock:
            self._handlers[endpoint_uuid] = handler
        return endpoint_uuid

    def unregister(self, endpoint_uuid: str) -> None:
        with self._lock:
            self._handlers.pop(endpoint_uuid, None)

    def connected(self, endpoint_uuid: str) -> bool:
        with self._lock:
            return endpoint_uuid in self._handlers

    def registered_endpoints(self) -> list[str]:
        with self._lock:
            return sorted(self._handlers)

    # -- forwarding ---------------------------------------------------------- #
    def forward(self, src_uuid: str, dst_uuid: str, payload: Any) -> None:
        """Deliver ``payload`` from ``src_uuid`` to ``dst_uuid``'s handler.

        Raises:
            RelayError: if either endpoint is not registered with this relay.
        """
        with self._lock:
            if src_uuid not in self._handlers:
                raise RelayError(f'source endpoint {src_uuid!r} is not registered')
            handler = self._handlers.get(dst_uuid)
        if handler is None:
            raise RelayError(f'destination endpoint {dst_uuid!r} is not registered')
        message = RelayForward(src_uuid=src_uuid, dst_uuid=dst_uuid, payload=payload)
        with self._lock:
            self.messages_forwarded += 1
            self.bytes_forwarded += _approx_size(payload)
        handler(message)

    def __repr__(self) -> str:
        return (
            f'RelayServer(name={self.name!r}, '
            f'endpoints={len(self.registered_endpoints())})'
        )


def _approx_size(payload: Any) -> int:
    """Rough size of a signaling payload (they are all tiny dataclasses)."""
    try:
        import pickle

        return len(pickle.dumps(payload))
    except Exception:  # noqa: BLE001 - size accounting is best-effort
        return 0
