"""Peer connections and chunked data channels between PS-endpoints.

A peer connection is established through the relay server with an
offer/answer handshake followed by an (emulated) ICE candidate exchange and
hole punch, after which the two endpoints exchange data directly without the
relay (Figure 4).  Data channels chunk serialized messages — mirroring the
real RTCDataChannel's bounded message size — and reassemble them on the
receiving side; per-connection statistics record messages, chunks and bytes
so benchmarks and tests can verify that bulk data bypasses the relay.

The transport is an in-process queue per connection side (see the package
docstring for the substitution rationale).
"""
from __future__ import annotations

import pickle
import queue
import threading
import uuid as uuid_module
from dataclasses import dataclass
from dataclasses import field
from typing import Any
from typing import Callable

from repro.exceptions import PeeringError

__all__ = ['ChannelEnd', 'DataChannel', 'PeerConnection', 'PeerConnectionStats']

#: Default maximum chunk carried in one data-channel message (the real
#: RTCDataChannel implementations bound message sizes to ~16 KiB).
DEFAULT_CHUNK_SIZE = 16_384


# Process-global registry of channel endpoints, keyed by token.  Exchanging a
# token through the relay plays the role of exchanging ICE candidates: once
# both sides know each other's token, they can deliver chunks directly.
_CHANNEL_ENDS: dict[str, 'ChannelEnd'] = {}
_CHANNEL_LOCK = threading.Lock()


class ChannelEnd:
    """The receiving side of a data channel: a queue of chunk frames."""

    def __init__(self) -> None:
        self.token = uuid_module.uuid4().hex
        self.frames: queue.Queue = queue.Queue()
        with _CHANNEL_LOCK:
            _CHANNEL_ENDS[self.token] = self

    def close(self) -> None:
        with _CHANNEL_LOCK:
            _CHANNEL_ENDS.pop(self.token, None)

    @staticmethod
    def lookup(token: str) -> 'ChannelEnd':
        with _CHANNEL_LOCK:
            end = _CHANNEL_ENDS.get(token)
        if end is None:
            raise PeeringError(f'no channel endpoint with token {token!r} (peer offline?)')
        return end


@dataclass
class PeerConnectionStats:
    """Traffic counters of one peer connection."""

    messages_sent: int = 0
    messages_received: int = 0
    chunks_sent: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    reconnects: int = 0


class DataChannel:
    """Chunking sender bound to a remote :class:`ChannelEnd`."""

    def __init__(self, remote_token: str, *, chunk_size: int = DEFAULT_CHUNK_SIZE) -> None:
        if chunk_size <= 0:
            raise ValueError('chunk_size must be positive')
        self.remote_token = remote_token
        self.chunk_size = chunk_size

    def send(self, message: Any) -> tuple[int, int]:
        """Serialize and send ``message``; returns ``(nbytes, nchunks)``."""
        remote = ChannelEnd.lookup(self.remote_token)
        data = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
        message_id = uuid_module.uuid4().hex
        total = max(1, (len(data) + self.chunk_size - 1) // self.chunk_size)
        for seq in range(total):
            chunk = data[seq * self.chunk_size:(seq + 1) * self.chunk_size]
            remote.frames.put((message_id, seq, total, chunk))
        return len(data), total


class _Reassembler:
    """Collects chunk frames back into whole messages."""

    def __init__(self) -> None:
        self._partial: dict[str, dict[int, bytes]] = {}
        self._totals: dict[str, int] = {}

    def add(self, frame: tuple[str, int, int, bytes]) -> Any | None:
        message_id, seq, total, chunk = frame
        parts = self._partial.setdefault(message_id, {})
        parts[seq] = chunk
        self._totals[message_id] = total
        if len(parts) == total:
            data = b''.join(parts[i] for i in range(total))
            del self._partial[message_id]
            del self._totals[message_id]
            return pickle.loads(data)
        return None


class PeerConnection:
    """An established, bidirectional connection to one remote endpoint.

    The connection owns its local :class:`ChannelEnd`, a receiver thread that
    reassembles inbound frames and dispatches them, and a table of pending
    requests awaiting responses.

    Args:
        local_uuid: UUID of the endpoint owning this connection.
        remote_uuid: UUID of the peer endpoint.
        local_end: this side's channel end (created during the handshake).
        remote_token: the peer's channel token (learned during the handshake).
        on_request: callback invoked (on the receiver thread) for inbound
            request messages; its return value is sent back as the response.
        chunk_size: data channel chunk size.
    """

    def __init__(
        self,
        local_uuid: str,
        remote_uuid: str,
        local_end: ChannelEnd,
        remote_token: str,
        *,
        on_request: Callable[[Any], Any],
        chunk_size: int = DEFAULT_CHUNK_SIZE,
    ) -> None:
        self.local_uuid = local_uuid
        self.remote_uuid = remote_uuid
        self.local_end = local_end
        self.channel = DataChannel(remote_token, chunk_size=chunk_size)
        self.stats = PeerConnectionStats()
        self._on_request = on_request
        self._pending: dict[str, queue.Queue] = {}
        self._pending_lock = threading.Lock()
        self._closed = threading.Event()
        self._receiver = threading.Thread(
            target=self._receive_loop,
            name=f'peer-recv-{local_uuid[:8]}-{remote_uuid[:8]}',
            daemon=True,
        )
        self._receiver.start()

    # -- receive path -------------------------------------------------------- #
    def _receive_loop(self) -> None:
        reassembler = _Reassembler()
        while not self._closed.is_set():
            try:
                frame = self.local_end.frames.get(timeout=0.1)
            except queue.Empty:
                continue
            if frame is None:  # sentinel pushed by close()
                break
            message = reassembler.add(frame)
            if message is None:
                continue
            self.stats.messages_received += 1
            self.stats.bytes_received += sum(len(frame[3]) for frame in [frame])
            self._dispatch(message)

    def _dispatch(self, message: Any) -> None:
        from repro.endpoint.messages import PeerRequest
        from repro.endpoint.messages import PeerResponse

        if isinstance(message, PeerResponse):
            with self._pending_lock:
                waiter = self._pending.pop(message.message_id, None)
            if waiter is not None:
                waiter.put(message)
            return
        if isinstance(message, PeerRequest):
            try:
                response = self._on_request(message)
            except Exception as e:  # noqa: BLE001 - report to the requester
                response = PeerResponse(
                    message_id=message.message_id, success=False, error=str(e),
                )
            nbytes, nchunks = self.channel.send(response)
            self.stats.messages_sent += 1
            self.stats.bytes_sent += nbytes
            self.stats.chunks_sent += nchunks
            return
        # Unknown message types are ignored (forward compatibility).

    # -- send path ------------------------------------------------------------- #
    def request(self, request: Any, *, timeout: float = 30.0) -> Any:
        """Send ``request`` to the peer and block for the matching response."""
        if self._closed.is_set():
            raise PeeringError(
                f'peer connection {self.local_uuid[:8]} -> {self.remote_uuid[:8]} is closed',
            )
        waiter: queue.Queue = queue.Queue(maxsize=1)
        with self._pending_lock:
            self._pending[request.message_id] = waiter
        nbytes, nchunks = self.channel.send(request)
        self.stats.messages_sent += 1
        self.stats.bytes_sent += nbytes
        self.stats.chunks_sent += nchunks
        try:
            return waiter.get(timeout=timeout)
        except queue.Empty:
            with self._pending_lock:
                self._pending.pop(request.message_id, None)
            raise PeeringError(
                f'timed out waiting for response from peer {self.remote_uuid[:8]}',
            ) from None

    # -- lifecycle -------------------------------------------------------------- #
    @property
    def closed(self) -> bool:
        return self._closed.is_set()

    def close(self) -> None:
        if self._closed.is_set():
            return
        self._closed.set()
        self.local_end.frames.put(None)
        self.local_end.close()
        self._receiver.join(timeout=2)

    def __repr__(self) -> str:
        return (
            f'PeerConnection({self.local_uuid[:8]} <-> {self.remote_uuid[:8]}, '
            f'closed={self.closed})'
        )
