"""Message types exchanged with the relay server and between peer endpoints."""
from __future__ import annotations

import uuid
from dataclasses import dataclass
from dataclasses import field
from typing import Any

__all__ = [
    'PeerRequest',
    'PeerResponse',
    'RelayForward',
    'SDPAnswer',
    'SDPOffer',
    'IceCandidate',
    'new_message_id',
]


def new_message_id() -> str:
    return uuid.uuid4().hex


# --------------------------------------------------------------------------- #
# Signaling messages (exchanged via the relay server; Figure 4 of the paper)
# --------------------------------------------------------------------------- #
@dataclass
class SDPOffer:
    """Session description offered by the endpoint initiating a peer connection."""

    src_uuid: str
    dst_uuid: str
    session_id: str = field(default_factory=new_message_id)
    supported_transports: tuple[str, ...] = ('memory',)
    # The offerer's channel token: how the acceptor can reach it directly
    # once the handshake completes (stands in for the offerer's ICE info).
    channel_token: str | None = None


@dataclass
class SDPAnswer:
    """Session description returned by the endpoint accepting a connection."""

    src_uuid: str
    dst_uuid: str
    session_id: str
    accepted_transport: str
    # In-process "address" of the acceptor's inbound channel; stands in for
    # the ICE candidate list of the real WebRTC handshake.
    channel_token: str | None = None


@dataclass
class IceCandidate:
    """A (public address, port)-like candidate exchanged during hole punching."""

    src_uuid: str
    dst_uuid: str
    session_id: str
    candidate: str


@dataclass
class RelayForward:
    """Envelope used by the relay server to deliver a signaling payload."""

    src_uuid: str
    dst_uuid: str
    payload: Any


# --------------------------------------------------------------------------- #
# Data-plane messages (sent over established peer connections)
# --------------------------------------------------------------------------- #
@dataclass
class PeerRequest:
    """An operation forwarded to the endpoint that owns the target object."""

    op: str                       # 'get' | 'set' | 'exists' | 'evict'
    object_id: str
    data: bytes | None = None
    message_id: str = field(default_factory=new_message_id)
    src_uuid: str = ''


@dataclass
class PeerResponse:
    """Reply to a :class:`PeerRequest`."""

    message_id: str
    success: bool
    data: bytes | None = None
    exists: bool | None = None
    error: str | None = None
