"""The PS-endpoint: a per-site object store with peer-to-peer forwarding.

An endpoint owns an :class:`~repro.endpoint.storage.EndpointStorage`, registers
with a relay server (which assigns its UUID if it does not have one), and
serves client requests on a single worker thread — mirroring the
single-threaded asyncio implementation the paper describes (and whose
concurrency behaviour Figure 8 characterizes).  Requests whose key names a
different endpoint are forwarded over a peer connection that is established
on demand through the relay and re-established if it was closed.
"""
from __future__ import annotations

import contextvars
import queue
import threading
from typing import NamedTuple

from repro.endpoint.messages import IceCandidate
from repro.endpoint.messages import PeerRequest
from repro.endpoint.messages import PeerResponse
from repro.endpoint.messages import RelayForward
from repro.endpoint.messages import SDPAnswer
from repro.endpoint.messages import SDPOffer
from repro.endpoint.peer import DEFAULT_CHUNK_SIZE
from repro.endpoint.peer import ChannelEnd
from repro.endpoint.peer import PeerConnection
from repro.endpoint.relay import RelayServer
from repro.endpoint.storage import EndpointStorage
from repro.exceptions import EndpointError
from repro.exceptions import PeeringError

__all__ = [
    'Endpoint',
    'EndpointKey',
    'get_registered_endpoint',
    'registered_endpoints',
    'reset_endpoint_registry',
]


class EndpointKey(NamedTuple):
    """Key of an object stored on a PS-endpoint: ``(object_id, endpoint_id)``."""

    object_id: str
    endpoint_id: str


class _WorkItem(NamedTuple):
    request: PeerRequest
    target_uuid: str | None
    reply: queue.Queue


# Process-global registry of running endpoints so that connectors re-created
# from their config (on what would be another machine in production) can find
# "their" local endpoint.  See EndpointConnector for how the local endpoint is
# selected.
_ENDPOINTS: dict[str, 'Endpoint'] = {}
_ENDPOINTS_LOCK = threading.Lock()


def get_registered_endpoint(endpoint_uuid: str) -> 'Endpoint | None':
    with _ENDPOINTS_LOCK:
        return _ENDPOINTS.get(endpoint_uuid)


def registered_endpoints() -> list[str]:
    with _ENDPOINTS_LOCK:
        return sorted(_ENDPOINTS)


def reset_endpoint_registry() -> None:
    """Stop and forget every registered endpoint (test isolation)."""
    with _ENDPOINTS_LOCK:
        endpoints = list(_ENDPOINTS.values())
        _ENDPOINTS.clear()
    for endpoint in endpoints:
        endpoint.stop()


class Endpoint:
    """A single PS-endpoint.

    Args:
        name: human-readable endpoint name (e.g. the site it serves).
        relay: the relay server used for peering.
        storage: object storage; a default unbounded in-memory store is used
            when omitted.
        endpoint_uuid: reuse an existing UUID; when ``None`` the relay assigns
            one at :meth:`start`.
        chunk_size: data-channel chunk size for peer transfers.
    """

    def __init__(
        self,
        name: str,
        relay: RelayServer,
        *,
        storage: EndpointStorage | None = None,
        endpoint_uuid: str | None = None,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
    ) -> None:
        self.name = name
        self.relay = relay
        self.storage = storage if storage is not None else EndpointStorage()
        self.chunk_size = chunk_size
        self.uuid: str | None = endpoint_uuid
        self._peers: dict[str, PeerConnection] = {}
        self._peers_lock = threading.Lock()
        self._pending_offers: dict[str, queue.Queue] = {}
        self._pending_lock = threading.Lock()
        self._requests: queue.Queue[_WorkItem | None] = queue.Queue()
        self._worker: threading.Thread | None = None
        self._running = threading.Event()
        #: Number of ICE candidates exchanged (handshake bookkeeping only).
        self.ice_candidates_exchanged = 0
        #: Number of requests served, by kind, for the concurrency benchmark.
        self.requests_served = 0

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> str:
        """Register with the relay and start the worker thread; returns the UUID."""
        if self._running.is_set():
            assert self.uuid is not None
            return self.uuid
        self.uuid = self.relay.register(
            self._handle_relay_message, endpoint_uuid=self.uuid,
        )
        self._running.set()
        self._worker = threading.Thread(
            target=self._worker_loop, name=f'endpoint-{self.name}', daemon=True,
        )
        self._worker.start()
        with _ENDPOINTS_LOCK:
            _ENDPOINTS[self.uuid] = self
        return self.uuid

    def stop(self) -> None:
        """Close peer connections, deregister from the relay and stop serving."""
        if not self._running.is_set():
            return
        self._running.clear()
        self._requests.put(None)
        if self._worker is not None:
            self._worker.join(timeout=2)
        with self._peers_lock:
            for connection in self._peers.values():
                connection.close()
            self._peers.clear()
        if self.uuid is not None:
            self.relay.unregister(self.uuid)
            with _ENDPOINTS_LOCK:
                _ENDPOINTS.pop(self.uuid, None)

    @property
    def running(self) -> bool:
        return self._running.is_set()

    def __enter__(self) -> 'Endpoint':
        self.start()
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.stop()

    def __repr__(self) -> str:
        return f'Endpoint(name={self.name!r}, uuid={str(self.uuid)[:8]!r})'

    # ------------------------------------------------------------------ #
    # Client-facing operations
    # ------------------------------------------------------------------ #
    def set(self, object_id: str, data, *, endpoint_id: str | None = None) -> None:
        response = self._submit('set', object_id, data=data, endpoint_id=endpoint_id)
        if not response.success:
            raise EndpointError(f'set failed: {response.error}')

    def get(self, object_id: str, *, endpoint_id: str | None = None) -> bytes | None:
        response = self._submit('get', object_id, endpoint_id=endpoint_id)
        if not response.success:
            raise EndpointError(f'get failed: {response.error}')
        return response.data

    def exists(self, object_id: str, *, endpoint_id: str | None = None) -> bool:
        response = self._submit('exists', object_id, endpoint_id=endpoint_id)
        if not response.success:
            raise EndpointError(f'exists failed: {response.error}')
        return bool(response.exists)

    def evict(self, object_id: str, *, endpoint_id: str | None = None) -> None:
        response = self._submit('evict', object_id, endpoint_id=endpoint_id)
        if not response.success:
            raise EndpointError(f'evict failed: {response.error}')

    # ------------------------------------------------------------------ #
    # Request processing (single worker thread)
    # ------------------------------------------------------------------ #
    def _submit(
        self,
        op: str,
        object_id: str,
        *,
        data: bytes | None = None,
        endpoint_id: str | None = None,
    ) -> PeerResponse:
        if not self._running.is_set():
            raise EndpointError(f'endpoint {self.name!r} is not running')
        request = PeerRequest(op=op, object_id=object_id, data=data, src_uuid=self.uuid or '')
        target = endpoint_id if endpoint_id not in (None, self.uuid) else None
        reply: queue.Queue = queue.Queue(maxsize=1)
        self._requests.put(_WorkItem(request=request, target_uuid=target, reply=reply))
        return reply.get()

    def _worker_loop(self) -> None:
        while self._running.is_set():
            try:
                item = self._requests.get(timeout=0.1)
            except queue.Empty:
                continue
            if item is None:
                break
            try:
                if item.target_uuid is None:
                    response = self._apply_local(item.request)
                else:
                    response = self._forward(item.request, item.target_uuid)
            except Exception as e:  # noqa: BLE001 - reported to the caller
                response = PeerResponse(
                    message_id=item.request.message_id, success=False, error=str(e),
                )
            self.requests_served += 1
            item.reply.put(response)

    def _apply_local(self, request: PeerRequest) -> PeerResponse:
        if request.op == 'set':
            if request.data is None:
                return PeerResponse(
                    message_id=request.message_id, success=False,
                    error='set requires data',
                )
            self.storage.set(request.object_id, request.data)
            return PeerResponse(message_id=request.message_id, success=True)
        if request.op == 'get':
            data = self.storage.get(request.object_id)
            return PeerResponse(message_id=request.message_id, success=True, data=data)
        if request.op == 'exists':
            return PeerResponse(
                message_id=request.message_id, success=True,
                exists=self.storage.exists(request.object_id),
            )
        if request.op == 'evict':
            self.storage.evict(request.object_id)
            return PeerResponse(message_id=request.message_id, success=True)
        return PeerResponse(
            message_id=request.message_id, success=False,
            error=f'unknown operation {request.op!r}',
        )

    def _forward(self, request: PeerRequest, target_uuid: str) -> PeerResponse:
        connection = self._ensure_peer(target_uuid)
        response = connection.request(request)
        return response

    # ------------------------------------------------------------------ #
    # Peering (signaling + connection management)
    # ------------------------------------------------------------------ #
    def peer_connections(self) -> dict[str, PeerConnection]:
        """Return a snapshot of current peer connections keyed by remote UUID."""
        with self._peers_lock:
            return dict(self._peers)

    def _ensure_peer(self, remote_uuid: str) -> PeerConnection:
        """Return an open peer connection, establishing or re-establishing it."""
        assert self.uuid is not None
        with self._peers_lock:
            existing = self._peers.get(remote_uuid)
            if existing is not None and not existing.closed:
                return existing
            was_connected = existing is not None
        connection = self._initiate_handshake(remote_uuid)
        with self._peers_lock:
            if was_connected:
                connection.stats.reconnects += 1
            self._peers[remote_uuid] = connection
        return connection

    def _initiate_handshake(self, remote_uuid: str) -> PeerConnection:
        assert self.uuid is not None
        local_end = ChannelEnd()
        offer = SDPOffer(
            src_uuid=self.uuid,
            dst_uuid=remote_uuid,
            channel_token=local_end.token,
        )
        waiter: queue.Queue = queue.Queue(maxsize=1)
        with self._pending_lock:
            self._pending_offers[offer.session_id] = waiter
        try:
            self.relay.forward(self.uuid, remote_uuid, offer)
        except Exception as e:
            local_end.close()
            with self._pending_lock:
                self._pending_offers.pop(offer.session_id, None)
            raise PeeringError(
                f'could not reach endpoint {remote_uuid[:8]} via the relay: {e}',
            ) from e
        try:
            answer: SDPAnswer = waiter.get(timeout=10.0)
        except queue.Empty:
            local_end.close()
            raise PeeringError(
                f'timed out waiting for SDP answer from {remote_uuid[:8]}',
            ) from None
        finally:
            with self._pending_lock:
                self._pending_offers.pop(offer.session_id, None)
        if answer.channel_token is None:
            local_end.close()
            raise PeeringError('peer rejected the connection (no channel token)')
        # Emulated ICE candidate exchange / hole punching (Figure 4, step 5).
        self.relay.forward(
            self.uuid, remote_uuid,
            IceCandidate(
                src_uuid=self.uuid, dst_uuid=remote_uuid,
                session_id=offer.session_id, candidate=f'candidate:{self.uuid[:8]}',
            ),
        )
        return PeerConnection(
            self.uuid,
            remote_uuid,
            local_end,
            answer.channel_token,
            on_request=self._apply_local,
            chunk_size=self.chunk_size,
        )

    def _handle_relay_message(self, message: RelayForward) -> None:
        payload = message.payload
        if isinstance(payload, SDPOffer):
            self._accept_offer(payload)
        elif isinstance(payload, SDPAnswer):
            with self._pending_lock:
                waiter = self._pending_offers.get(payload.session_id)
            if waiter is not None:
                waiter.put(payload)
        elif isinstance(payload, IceCandidate):
            self.ice_candidates_exchanged += 1
        # Unknown payloads are ignored.

    def _accept_offer(self, offer: SDPOffer) -> None:
        assert self.uuid is not None
        if offer.channel_token is None:
            answer = SDPAnswer(
                src_uuid=self.uuid, dst_uuid=offer.src_uuid,
                session_id=offer.session_id, accepted_transport='memory',
                channel_token=None,
            )
            self.relay.forward(self.uuid, offer.src_uuid, answer)
            return
        local_end = ChannelEnd()
        connection = PeerConnection(
            self.uuid,
            offer.src_uuid,
            local_end,
            offer.channel_token,
            on_request=self._apply_local,
            chunk_size=self.chunk_size,
        )
        with self._peers_lock:
            previous = self._peers.get(offer.src_uuid)
            if previous is not None and not previous.closed:
                previous.close()
            self._peers[offer.src_uuid] = connection
        answer = SDPAnswer(
            src_uuid=self.uuid, dst_uuid=offer.src_uuid,
            session_id=offer.session_id, accepted_transport='memory',
            channel_token=local_end.token,
        )
        self.relay.forward(self.uuid, offer.src_uuid, answer)
        self.relay.forward(
            self.uuid, offer.src_uuid,
            IceCandidate(
                src_uuid=self.uuid, dst_uuid=offer.src_uuid,
                session_id=offer.session_id, candidate=f'candidate:{self.uuid[:8]}',
            ),
        )
