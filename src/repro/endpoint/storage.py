"""In-memory object storage of a PS-endpoint, with optional disk spill.

PS-endpoints are in-memory object stores with optional on-disk storage when
host memory is insufficient or persistence is required (Section 4.2.2).  The
storage here keeps objects in a dict up to ``max_memory_bytes`` and spills the
least-recently-inserted objects to a dump directory beyond that, fetching
them back transparently on access.
"""
from __future__ import annotations

import os
import threading
from collections import OrderedDict
from typing import Any

from repro.serialize.buffers import freeze_payload
from repro.serialize.buffers import payload_nbytes
from repro.serialize.buffers import write_payload_to_path

__all__ = ['EndpointStorage']


class EndpointStorage:
    """Bounded in-memory byte store with transparent disk spill.

    Args:
        max_memory_bytes: total bytes kept in memory before spilling; ``None``
            disables spilling (everything stays in memory).
        dump_dir: directory used for spilled objects; required if
            ``max_memory_bytes`` is set.
    """

    def __init__(
        self,
        *,
        max_memory_bytes: int | None = None,
        dump_dir: str | None = None,
    ) -> None:
        if max_memory_bytes is not None:
            if max_memory_bytes <= 0:
                raise ValueError('max_memory_bytes must be positive')
            if dump_dir is None:
                raise ValueError('dump_dir is required when max_memory_bytes is set')
            os.makedirs(dump_dir, exist_ok=True)
        self.max_memory_bytes = max_memory_bytes
        self.dump_dir = dump_dir
        self._memory: OrderedDict[str, Any] = OrderedDict()
        self._on_disk: set[str] = set()
        self._memory_bytes = 0
        self._lock = threading.Lock()

    # -- helpers ------------------------------------------------------------ #
    def _disk_path(self, object_id: str) -> str:
        assert self.dump_dir is not None
        return os.path.join(self.dump_dir, object_id)

    def _spill_if_needed_locked(self) -> None:
        if self.max_memory_bytes is None:
            return
        while self._memory_bytes > self.max_memory_bytes and self._memory:
            object_id, data = self._memory.popitem(last=False)
            self._memory_bytes -= payload_nbytes(data)
            # Multi-segment payloads spill with one writev, no join.
            write_payload_to_path(self._disk_path(object_id), data)
            self._on_disk.add(object_id)

    # -- operations ----------------------------------------------------------- #
    def set(self, object_id: str, data: Any) -> None:
        # Retained in this process's memory: keep immutable payloads by
        # reference, snapshot mutable ones (see freeze_payload).
        data = freeze_payload(data)
        with self._lock:
            previous = self._memory.pop(object_id, None)
            if previous is not None:
                self._memory_bytes -= payload_nbytes(previous)
            self._memory[object_id] = data
            self._memory_bytes += payload_nbytes(data)
            if object_id in self._on_disk:
                self._on_disk.discard(object_id)
                try:
                    os.unlink(self._disk_path(object_id))
                except OSError:  # pragma: no cover
                    pass
            self._spill_if_needed_locked()

    def get(self, object_id: str) -> Any | None:
        with self._lock:
            data = self._memory.get(object_id)
            if data is not None:
                return data
            if object_id in self._on_disk:
                with open(self._disk_path(object_id), 'rb') as f:
                    return f.read()
        return None

    def exists(self, object_id: str) -> bool:
        with self._lock:
            return object_id in self._memory or object_id in self._on_disk

    def evict(self, object_id: str) -> None:
        with self._lock:
            data = self._memory.pop(object_id, None)
            if data is not None:
                self._memory_bytes -= payload_nbytes(data)
            if object_id in self._on_disk:
                self._on_disk.discard(object_id)
                try:
                    os.unlink(self._disk_path(object_id))
                except OSError:  # pragma: no cover
                    pass

    def clear(self) -> None:
        with self._lock:
            self._memory.clear()
            self._memory_bytes = 0
            for object_id in list(self._on_disk):
                try:
                    os.unlink(self._disk_path(object_id))
                except OSError:  # pragma: no cover
                    pass
            self._on_disk.clear()

    # -- introspection ---------------------------------------------------------- #
    def __len__(self) -> int:
        with self._lock:
            return len(self._memory) + len(self._on_disk)

    @property
    def memory_usage_bytes(self) -> int:
        with self._lock:
            return self._memory_bytes

    @property
    def spilled_count(self) -> int:
        with self._lock:
            return len(self._on_disk)
