"""PS-endpoints: peer-to-peer object transfer between two 'sites'.

Two endpoints register with a relay server; a proxy created at site A is
resolved at site B, which causes B's endpoint to establish a peer connection
to A's endpoint (offer/answer + ICE through the relay, then a chunked data
channel) and pull the object directly — the relay never carries the data.

Run with::

    python examples/endpoints_peer_to_peer.py
"""
from __future__ import annotations

import pickle

import numpy as np

from repro import store_from_url
from repro.connectors.endpoint import set_local_endpoint
from repro.endpoint import Endpoint
from repro.endpoint import RelayServer


def main() -> None:
    relay = RelayServer()
    site_a = Endpoint('site-a', relay)
    site_b = Endpoint('site-b', relay)
    site_a.start()
    site_b.start()
    print(f'relay assigned UUIDs: A={site_a.uuid[:8]}..., B={site_b.uuid[:8]}...')

    # Producer at site A: the participating endpoints are the URL netloc.
    set_local_endpoint(site_a.uuid)
    store = store_from_url(
        f'endpoint://{site_a.uuid},{site_b.uuid}/endpoint-example-store',
    )
    dataset = np.random.default_rng(0).normal(size=(256, 256))
    proxy = store.proxy(dataset, cache_local=False)
    wire = pickle.dumps(proxy)
    print(f'proxy of a {dataset.nbytes // 1024} KiB array pickles to {len(wire)} bytes')

    # Consumer at site B: resolving the proxy triggers the peer transfer.
    set_local_endpoint(site_b.uuid)
    received = pickle.loads(wire)
    print(f'resolved at site B: sum={float(received.sum()):.3f} '
          f'(matches producer: {np.allclose(received, dataset)})')

    connection = site_b.peer_connections()[site_a.uuid]
    print(f'peer connection stats: {connection.stats.messages_sent} messages, '
          f'{connection.stats.chunks_sent} chunks, {connection.stats.bytes_sent} bytes sent')
    print(f'relay carried only signaling traffic: {relay.bytes_forwarded} bytes total')

    set_local_endpoint(None)
    store.close()
    site_a.stop()
    site_b.stop()


if __name__ == '__main__':
    main()
