"""Quickstart: transparent object proxies with a Store (Listing 1 of the paper).

Run with::

    python examples/quickstart.py
"""
from __future__ import annotations

import pickle
import tempfile

import numpy as np

from repro.connectors.file import FileConnector
from repro.connectors.redis import RedisConnector
from repro.proxy import Proxy
from repro.proxy import is_resolved
from repro.store import Store


class Simulation:
    """Any user-defined type works: proxies are fully transparent."""

    def __init__(self, temperature: float, coordinates: np.ndarray) -> None:
        self.temperature = temperature
        self.coordinates = coordinates

    def kinetic_energy(self) -> float:
        return float(0.5 * np.sum(self.coordinates ** 2))


def my_function(x: Simulation) -> float:
    # The consumer code has no idea it received a proxy: the object is
    # resolved from the store on first use, and isinstance checks pass.
    assert isinstance(x, Simulation)
    return x.kinetic_energy() / (x.temperature + 1e-9)


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        # A Store is initialized with a Connector (here a shared-file-system
        # connector; swap in RedisConnector(launch=True) for a server-backed
        # store without changing anything else).
        store = Store('quickstart-store', FileConnector(f'{tmp}/proxystore'))

        simulation = Simulation(300.0, np.random.default_rng(0).normal(size=(1000, 3)))
        proxy = store.proxy(simulation, cache_local=False)

        print(f'created proxy: resolved={is_resolved(proxy)}')
        print(f'proxy is a Proxy: {isinstance(proxy, Proxy)}')

        # The proxy is tiny when communicated: only its factory is pickled.
        wire = pickle.dumps(proxy)
        print(f'proxy pickles to {len(wire)} bytes '
              f'(the simulation itself is ~{simulation.coordinates.nbytes} bytes)')

        # Any existing function works unchanged.
        restored = pickle.loads(wire)
        value = my_function(restored)
        print(f'my_function(proxy) = {value:.4f}')
        print(f'after use: resolved={is_resolved(restored)}')

        # Server-backed stores work the same way.
        redis_store = Store('quickstart-redis', RedisConnector(launch=True))
        p2 = redis_store.proxy({'status': 'ok', 'count': 3})
        print(f"redis-backed proxy resolves to: {dict(p2)}")

        store.close(clear=True)
        redis_store.close(clear=True)


if __name__ == '__main__':
    main()
