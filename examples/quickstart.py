"""Quickstart: transparent object proxies with a Store (Listing 1 of the paper).

Run with::

    python examples/quickstart.py
"""
from __future__ import annotations

import pickle
import tempfile

import numpy as np

from repro import store_from_url
from repro.proxy import Proxy
from repro.proxy import is_resolved


class Simulation:
    """Any user-defined type works: proxies are fully transparent."""

    def __init__(self, temperature: float, coordinates: np.ndarray) -> None:
        self.temperature = temperature
        self.coordinates = coordinates

    def kinetic_energy(self) -> float:
        return float(0.5 * np.sum(self.coordinates ** 2))


def my_function(x: Simulation) -> float:
    # The consumer code has no idea it received a proxy: the object is
    # resolved from the store on first use, and isinstance checks pass.
    assert isinstance(x, Simulation)
    return x.kinetic_energy() / (x.temperature + 1e-9)


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        # A Store is built from a URL: the scheme picks the connector (here
        # the shared-file-system connector); swap the URL for
        # 'redis://?launch=1' (or any other registered scheme) to change the
        # mediated channel without touching anything else.
        store = store_from_url(f'file://{tmp}/proxystore?name=quickstart-store')

        simulation = Simulation(300.0, np.random.default_rng(0).normal(size=(1000, 3)))
        proxy = store.proxy(simulation, cache_local=False)

        print(f'created proxy: resolved={is_resolved(proxy)}')
        print(f'proxy is a Proxy: {isinstance(proxy, Proxy)}')

        # The proxy is tiny when communicated: only its factory is pickled.
        wire = pickle.dumps(proxy)
        print(f'proxy pickles to {len(wire)} bytes '
              f'(the simulation itself is ~{simulation.coordinates.nbytes} bytes)')

        # Any existing function works unchanged.
        restored = pickle.loads(wire)
        value = my_function(restored)
        print(f'my_function(proxy) = {value:.4f}')
        print(f'after use: resolved={is_resolved(restored)}')

        # Server-backed stores work the same way — only the URL changes.
        redis_store = store_from_url('redis:///quickstart-redis?launch=1')
        p2 = redis_store.proxy({'status': 'ok', 'count': 3})
        print(f"redis-backed proxy resolves to: {dict(p2)}")

        # A value that does not exist yet: hand out the proxy first, produce
        # the object later (ProxyFuture — the v2 data-flow primitive).
        future = store.future()
        pending = future.proxy()
        print(f'future proxy created: resolved={is_resolved(pending)}')
        future.set_result({'produced': 'later'})
        print(f'future proxy resolves to: {dict(pending)}')

        store.close(clear=True)
        redis_store.close(clear=True)


if __name__ == '__main__':
    main()
