"""Routing different data over different channels with MultiConnector.

Mirrors the molecular design deployment of Section 5.6: small, latency
sensitive objects go to a Redis-like store, bulk objects to the shared file
system, and GPU-bound objects (tagged ``'gpu'``) to a dedicated store — all
behind a single Store instance, so task code never changes.

The whole deployment is expressed as one ``multi://`` store URL whose query
parameters are the managed connectors: each label maps to a percent-encoded
inner store URL carrying its own policy parameters.

Run with::

    python examples/multi_connector_workflow.py
"""
from __future__ import annotations

import tempfile
from urllib.parse import quote

import numpy as np

from repro import store_from_url
from repro.proxy import get_factory
from repro.workflow import ColmenaQueues
from repro.workflow import TaskServer
from repro.workflow import Thinker
from repro.workflow import WorkflowEngine


def simulate(features):
    """A 'quantum chemistry' task: returns a large result array."""
    return np.outer(features, features)


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        # One URL describes the whole policy-routed deployment.
        backends = {
            'redis': 'redis://?launch=1&max_size_bytes=100000&priority=2',
            'filesystem': f'file://{tmp}/bulk?min_size_bytes=100001&priority=1',
            'gpu-station': 'local://?superset_tags=gpu&priority=5',
        }
        url = 'multi://?' + '&'.join(
            f'{label}={quote(inner, safe="")}' for label, inner in backends.items()
        )
        store = store_from_url(url, name='molecular-design-store')

        # Direct use: routing is driven by object size and tags.
        small = store.proxy({'candidate': 17, 'ip_estimate': 9.2})
        large = store.proxy(np.zeros((600, 600)))
        weights = store.proxy(np.zeros(1000), superset_tags=('gpu',))
        for name, proxy in (('small', small), ('large', large), ('gpu weights', weights)):
            key = get_factory(proxy).key
            print(f'{name:12s} -> routed to {key.connector_label!r}')

        # Library-level integration: the Colmena-like task server proxies any
        # task data above 10 kB automatically; task code is unchanged.
        queues = ColmenaQueues()
        with WorkflowEngine(n_workers=2) as engine:
            server = TaskServer(queues, engine, fixed_overhead_s=0.0)
            server.register_topic('simulate', simulate, store=store, threshold_bytes=10_000)
            thinker = Thinker(queues)
            with server:
                # Producer/consumer pipelining: wire a downstream consumer to
                # the simulation's not-yet-computed result via a ProxyFuture.
                future = server.result_future('simulate')
                downstream = future.proxy()
                thinker.submit(
                    'simulate',
                    np.random.default_rng(0).normal(size=600),
                    result_future=future,
                )
                # The consumer starts with the proxy immediately and blocks
                # only when it first touches the data.
                print(f'downstream consumer sees a {downstream.shape} result '
                      f'(trace: {float(np.trace(downstream)):.2f})')
                result = thinker.wait_for_result()
        print(f'simulation result proxied: {result.proxied_result} '
              f'(result seen by the workflow system: {result.result_bytes} bytes)')
        store.close(clear=True)


if __name__ == '__main__':
    main()
