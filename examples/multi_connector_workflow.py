"""Routing different data over different channels with MultiConnector.

Mirrors the molecular design deployment of Section 5.6: small, latency
sensitive objects go to a Redis-like store, bulk objects to the shared file
system, and GPU-bound objects (tagged ``'gpu'``) to a dedicated store — all
behind a single Store instance, so task code never changes.

Run with::

    python examples/multi_connector_workflow.py
"""
from __future__ import annotations

import tempfile

import numpy as np

from repro.connectors.file import FileConnector
from repro.connectors.local import LocalConnector
from repro.connectors.multi import MultiConnector
from repro.connectors.policy import Policy
from repro.connectors.redis import RedisConnector
from repro.proxy import get_factory
from repro.store import Store
from repro.workflow import ColmenaQueues
from repro.workflow import TaskServer
from repro.workflow import Thinker
from repro.workflow import WorkflowEngine


def simulate(features):
    """A 'quantum chemistry' task: returns a large result array."""
    return np.outer(features, features)


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        multi = MultiConnector({
            'redis': (RedisConnector(launch=True),
                      Policy(max_size_bytes=100_000, priority=2)),
            'filesystem': (FileConnector(f'{tmp}/bulk'),
                           Policy(min_size_bytes=100_001, priority=1)),
            'gpu-station': (LocalConnector(),
                            Policy(superset_tags=('gpu',), priority=5)),
        })
        store = Store('molecular-design-store', multi)

        # Direct use: routing is driven by object size and tags.
        small = store.proxy({'candidate': 17, 'ip_estimate': 9.2})
        large = store.proxy(np.zeros((600, 600)))
        weights = store.proxy(np.zeros(1000), superset_tags=('gpu',))
        for name, proxy in (('small', small), ('large', large), ('gpu weights', weights)):
            key = get_factory(proxy).key
            print(f'{name:12s} -> routed to {key.connector_label!r}')

        # Library-level integration: the Colmena-like task server proxies any
        # task data above 10 kB automatically; task code is unchanged.
        queues = ColmenaQueues()
        with WorkflowEngine(n_workers=2) as engine:
            server = TaskServer(queues, engine, fixed_overhead_s=0.0)
            server.register_topic('simulate', simulate, store=store, threshold_bytes=10_000)
            thinker = Thinker(queues)
            with server:
                result = thinker.run_task('simulate', np.random.default_rng(0).normal(size=600))
        print(f'simulation result proxied: {result.proxied_result} '
              f'(result seen by the workflow system: {result.result_bytes} bytes)')
        store.close(clear=True)


if __name__ == '__main__':
    main()
