"""Offloading FaaS task data with proxies (Listing 2 / Figure 5 of the paper).

A client on a login node submits tasks to a compute endpoint through the
simulated Globus-Compute-like cloud service.  Passing the 8 MB input directly
is rejected by the service's 5 MB payload limit; passing a proxy of it works
and moves the data over the shared file system instead of through the cloud.

Run with::

    python examples/faas_offload.py
"""
from __future__ import annotations

import tempfile

import numpy as np

from repro import store_from_url
from repro.exceptions import PayloadTooLargeError
from repro.faas import CloudFaaSService
from repro.faas import ComputeEndpoint
from repro.faas import Executor
from repro.proxy import Proxy
from repro.simulation import VirtualClock
from repro.simulation import paper_testbed
from repro.simulation.context import on_host
from repro.simulation.costed import CostedConnector
from repro.simulation.costs import SharedFilesystemCost


def analyze(data, ctx=None) -> float:
    """The task: compute a statistic of a (possibly proxied) array."""
    if ctx is not None and isinstance(data, Proxy):
        ctx.resolve_proxy(data)          # charge the data movement
    array = np.frombuffer(bytes(data), dtype=np.uint8)
    return float(array.mean())


def main() -> None:
    fabric = paper_testbed()
    clock = VirtualClock()
    cloud = CloudFaaSService(fabric, clock)
    endpoint = ComputeEndpoint('theta-endpoint', 'theta-compute', clock, fabric)
    cloud.register_endpoint(endpoint)
    executor = Executor(cloud, 'theta-endpoint', client_host='theta-login')

    payload = np.random.default_rng(0).integers(0, 256, size=8_000_000, dtype=np.uint8).tobytes()

    with on_host('theta-login'):
        print('--- without ProxyStore ---')
        try:
            executor.submit(analyze, payload)
        except PayloadTooLargeError as e:
            print(f'rejected by the cloud service: {e}')

        print('--- with ProxyStore (two extra lines of client code) ---')
        with tempfile.TemporaryDirectory() as tmp:
            # The channel is a URL; the simulation only wraps it with
            # virtual-time cost accounting.
            store = store_from_url(
                f'file://{tmp}?name=faas-offload-store',
                wrap_connector=lambda inner: CostedConnector(
                    inner, SharedFilesystemCost(fabric), clock,
                ),
            )
            data = store.proxy(payload, cache_local=False)
            start = clock.now()
            future = executor.submit(analyze, data)
            result = future.result()
            print(f'task result: {result:.2f}')
            print(f'virtual round-trip time: {clock.now() - start:.3f} s '
                  '(data moved via the shared file system, not the cloud)')
            store.close(clear=True)


if __name__ == '__main__':
    main()
