"""Federated learning over edge endpoints (Section 5.5 of the paper).

An aggregator shares a model with four edge devices by proxy: each device's
endpoint pulls the model directly from the aggregator's endpoint (peer to
peer through the relay), trains on its private data, and the aggregator
averages the returned models.  Only models ever cross the network.

The aggregation step is *pipelined* with ``ProxyFuture``: the aggregator
allocates one future per device up front and immediately wires the averaging
step to the futures' proxies; each device writes its trained model into its
future whenever it finishes, and the averaging resolves the proxies as it
touches them — no barrier collecting a list of results first.

Object lifetimes are store-managed rather than leaked: the global model each
round is an ``OwnedProxy`` whose key is evicted when its ``with`` block ends,
and every device-result future is bound to a run-scoped ``ContextLifetime``
that batch-evicts all trained-model keys once the run finishes.

Run with::

    python examples/federated_learning.py
"""
from __future__ import annotations

import numpy as np

from repro import ContextLifetime
from repro import store_from_url
from repro.apps.federated_learning import create_model
from repro.apps.federated_learning import federated_average
from repro.apps.federated_learning import generate_client_data
from repro.apps.federated_learning import model_nbytes
from repro.apps.federated_learning import train_local
from repro.connectors.endpoint import set_local_endpoint
from repro.endpoint import Endpoint
from repro.endpoint import RelayServer
from repro.proxy import borrow
from repro.proxy import extract

N_DEVICES = 4
ROUNDS = 3


def main() -> None:
    relay = RelayServer()
    aggregator_ep = Endpoint('aggregator', relay)
    aggregator_ep.start()
    device_eps = [Endpoint(f'edge-device-{i}', relay) for i in range(N_DEVICES)]
    for ep in device_eps:
        ep.start()

    all_uuids = [aggregator_ep.uuid] + [ep.uuid for ep in device_eps]
    set_local_endpoint(aggregator_ep.uuid)
    store = store_from_url(f'endpoint://{",".join(all_uuids)}/fl-model-store')

    global_model = create_model(hidden_blocks=2)
    print(f'initial model: {global_model.num_parameters()} parameters, '
          f'{model_nbytes(global_model)} bytes serialized')

    test_images, test_labels = generate_client_data(512, seed=999)
    # Every trained-model key produced during the run is bound to one
    # run-scoped lifetime; closing it below batch-evicts them all, so the
    # aggregator's endpoint storage does not grow round over round.
    run_lifetime = ContextLifetime(store=store)
    for round_index in range(ROUNDS):
        # The aggregator owns the round's global model: the key is evicted
        # automatically when the owner's `with` block ends, instead of
        # leaking one model copy per round.
        set_local_endpoint(aggregator_ep.uuid)
        with store.owned_proxy(global_model, cache_local=False) as model_proxy:
            # Pipelined aggregation: allocate one future per device and wire
            # the averaging input to the proxies before any device trained.
            result_futures = [
                store.future(timeout=30.0, lifetime=run_lifetime)
                for _ in device_eps
            ]
            local_model_proxies = [future.proxy() for future in result_futures]

            for device_index, device_ep in enumerate(device_eps):
                set_local_endpoint(device_ep.uuid)    # "run" on the device
                # Devices read the owner's model through shared borrows.
                model = (
                    extract(borrow(model_proxy))
                    if device_index == 0
                    else global_model
                )
                images, labels = generate_client_data(seed=round_index * 100 + device_index)
                trained = train_local(model, images, labels, epochs=2)
                # The device streams its result into the pre-allocated
                # future; the write lands on the aggregator's endpoint
                # peer-to-peer.
                result_futures[device_index].set_result(trained)

            set_local_endpoint(aggregator_ep.uuid)
            # federated_average touches each proxy, resolving it on demand.
            global_model = federated_average(local_model_proxies)
        accuracy = float(np.mean(global_model.predict(test_images) == test_labels))
        print(f'round {round_index + 1}: aggregated {len(local_model_proxies)} device models, '
              f'held-out accuracy {accuracy:.3f}')

    set_local_endpoint(None)
    run_lifetime.close()
    store.close()
    for ep in device_eps:
        ep.stop()
    aggregator_ep.stop()
    print('done: only models crossed the (simulated) network; raw data never left the devices')


if __name__ == '__main__':
    main()
