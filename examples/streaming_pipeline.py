"""Streaming proxy channels: an unbounded producer → worker → sink pipeline.

A producer publishes simulation frames on a topic: each frame's bulk data
goes into a Store (any connector) while only a tiny event — key plus
metadata — rides the event bus.  A consumer iterates the topic and gets
lazy proxies; the workflow engine dispatches one task per event and
publishes results to an output topic.  Swap the bus URL from
``local://...`` to ``kv://host:port?launch=1`` and the same code runs the
events through the SimKV broker with server-side fan-out.

Run with::

    PYTHONPATH=src python examples/streaming_pipeline.py
"""
from __future__ import annotations

import numpy as np

from repro import store_from_url
from repro.proxy import Proxy
from repro.proxy import drop
from repro.proxy import is_resolved
from repro.stream import StreamConsumer
from repro.stream import StreamProducer
from repro.stream import event_bus_from_url
from repro.workflow.engine import WorkflowEngine

FRAMES = 12
FRAME_SHAPE = (64, 64)


def analyze(frame: np.ndarray) -> dict:
    """A worker task: receives a proxy, touches it, data resolves lazily."""
    data = np.asarray(frame)
    return {'mean': float(data.mean()), 'max': float(data.max())}


def main() -> None:
    store = store_from_url('local:///streaming-example?name=stream-store')
    bus = event_bus_from_url('local://streaming-example?retention=64')
    rng = np.random.default_rng(7)

    # --- producer side: frames stream out as (store put + tiny event) ----
    producer = StreamProducer(store, bus, 'frames')
    for step in range(FRAMES):
        frame = rng.normal(loc=step, size=FRAME_SHAPE)
        producer.send(frame, metadata={'step': step})
    producer.close()  # publishes the end-of-stream marker
    print(f'produced {producer.sent} frames '
          f'({FRAMES * 8 * FRAME_SHAPE[0] * FRAME_SHAPE[1] // 1024} KiB of data, '
          'none of it on the event bus)')

    # --- consumer side: lazy proxies, resolved only when touched ---------
    consumer = StreamConsumer(store, bus, 'frames', from_seq=0, timeout=10.0)
    results = StreamProducer(store, bus, 'results')
    with WorkflowEngine(n_workers=4, extra_hops=0) as engine:
        stats = engine.run_stream(analyze, consumer, output=results)
    print(f'dispatched {stats["tasks"]} tasks, '
          f'published {stats["published"]} results in input order')

    # --- sink: results are themselves a stream ---------------------------
    sink = StreamConsumer(store, bus, 'results', from_seq=0, timeout=10.0)
    means = []
    for event, item in sink.events():
        assert isinstance(item, Proxy) and not is_resolved(item)
        means.append(item['mean'])  # first touch resolves from the store
    print(f'frame means climb with step: {means[0]:.2f} ... {means[-1]:.2f}')
    assert means == sorted(means)

    # Consumed items can be batch-evicted so the store never fills:
    evicted = consumer.ack() + sink.ack()
    print(f'acked streams: {evicted} keys batch-evicted from the store')

    # --- owned mode: items evict themselves when dropped -----------------
    producer2 = StreamProducer(store, bus, 'owned-frames')
    owned_consumer = StreamConsumer(
        store, bus, 'owned-frames', owned=True, from_seq=0, timeout=10.0,
    )
    producer2.send(rng.normal(size=FRAME_SHAPE))
    producer2.close()
    for event, item in owned_consumer.events():
        _ = item.shape  # use it...
        drop(item)      # ...and the backing key is gone immediately
        print(f'owned frame seq={event.seq} dropped: '
              f'exists={store.exists(event.key)}')

    store.close(clear=True)


if __name__ == '__main__':
    main()
